#!/usr/bin/env bash
# Tier-1 verification, fully offline.
#
#   scripts/verify.sh
#
# Steps:
#   1. zero-dependency audit: no Cargo.toml may pull anything from a
#      registry — every dependency must be a workspace path crate;
#   2. `cargo build --release` and `cargo test -q` with --offline
#      (the workspace must build with no network and no vendored deps),
#      plus `cargo clippy --workspace -- -D warnings` (lint-clean);
#   3. build all five examples;
#   4. CLI smoke test on the shipped sample system;
#   5. adversarial stress suite at elevated case counts (no-panic,
#      budget-respecting, structural ≤ degraded ≤ RTC sandwich), plus
#      the budgeted CLI run on systems/adversarial.srtw;
#   6. supervised batch smoke test: the shipped systems under a 2 s
#      watchdog must come back degraded-not-failed (exit 0), and a
#      fault-injected batch must exhaust the ladder and exit 4;
#   7. performance-regression gate: the newest committed BENCH_*.json
#      must not regress the `convolution`, `rbf`, `server_throughput`,
#      `fused_pipeline`, `server_connections`, `journal_overhead`,
#      `cache_saturation`, and `warm_restart` suite medians by more than
#      1.5x against the best older committed document (a suite with no
#      baseline yet is skipped with a notice);
#   8. service smoke test: `srtw serve` on an ephemeral port must answer
#      /healthz, produce an exact and a deadline-degraded /analyze,
#      shed with 503 when flooded past the queue bound, and drain
#      gracefully (exit 0, no leaked process);
#   9. replicated soak: `srtw serve --replicas 2` with an injected
#      `abort@N` takes 10k flood connections; the supervisor must
#      restart the aborted replica (exactly once), the surviving
#      replica's RSS must stay flat (±10%) and leak no fds between
#      flood waves, /analyze must stay byte-identical to the CLI, and
#      SIGTERM must drain the whole tree with exit 0 and no orphans;
#  10. durable batch: a journaled 100-job batch SIGKILL'd mid-run must
#      resume from its journal (>=1 job replayed, not recomputed) with a
#      final report byte-identical to an uninterrupted run, and a
#      deterministic torn-write fault must recover the same way;
#  11. cache + delta smoke test: the same system POSTed twice must
#      replay the first body verbatim (a /stats-confirmed cache hit),
#      a POST /analyze/delta edit must match a cold CLI run of the
#      edited system byte-for-byte (modulo runtime_secs), and the
#      server must still drain with exit 0;
#  12. persistent cache smoke + crash sweep: a result cached under
#      --persist must replay *verbatim* from a brand-new process as a
#      hit with zero cold misses, and for every injected persistence
#      fault (pers-torn@2, pers-corrupt@2, pers-enospc@2) the faulted
#      server must keep answering correct bytes with a typed
#      `srtw-persist:` warning, and a restart must land in exactly two
#      states — the durable record warm-and-byte-identical, the faulted
#      one cold-recomputed-but-correct.
#
# Benchmarks run separately (they are slow by design):
#   cargo run -p srtw-bench --release --bin experiments

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== 1/12 dependency audit (path-only policy) =="
# Inside [dependencies*] / [workspace.dependencies] sections, every
# dependency line must carry `path =` or `workspace = true`; a version
# requirement ("1.0", { version = ... }) means a registry dependency.
violations=$(awk '
    /^\[/ {
        in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies\]?/)
        next
    }
    in_deps && /=/ && !/^[[:space:]]*#/ {
        if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/)
            printf "%s: %s\n", FILENAME, $0
    }
' Cargo.toml crates/*/Cargo.toml)
if [ -n "$violations" ]; then
    echo "error: non-path dependencies found (zero-dependency policy):" >&2
    echo "$violations" >&2
    exit 1
fi
echo "ok: all dependencies are workspace path crates"

echo "== 2/12 offline build + tests =="
cargo build --release --offline --workspace
cargo clippy --offline --workspace -- -D warnings
SRTW_BENCH_FAST=1 cargo test -q --offline --workspace

echo "== 3/12 examples build =="
cargo build --release --offline --examples

echo "== 4/12 CLI smoke test =="
out=$(cargo run --release --offline -q --bin srtw -- analyze systems/decoder.srtw)
echo "$out" | grep -q "RTC baseline" || {
    echo "error: analyze output missing the RTC baseline line" >&2
    exit 1
}
json=$(cargo run --release --offline -q --bin srtw -- analyze systems/decoder.srtw --json)
case "$json" in
    "{"*"}") : ;;
    *) echo "error: --json output is not a JSON object" >&2; exit 1 ;;
esac

echo "== 5/12 adversarial stress suite =="
# Elevated case count for the seeded property suite; the release profile
# keeps the 150 ms wall budget per case meaningful.
SRTW_PROP_CASES=256 cargo test -q --release --offline --test stress
# The shipped adversarial system must degrade gracefully under a 1 s wall
# budget: exit 0, a degradation warning on stderr, "degraded":true in JSON.
adv_err=$(mktemp)
adv_json=$(cargo run --release --offline -q --bin srtw -- \
    analyze systems/adversarial.srtw --json --budget-ms 1000 2>"$adv_err") || {
    echo "error: budgeted adversarial run failed (exit $?)" >&2
    cat "$adv_err" >&2
    exit 1
}
case "$adv_json" in
    *'"degraded":true'*) : ;;
    *) echo 'error: adversarial run not flagged "degraded":true' >&2; exit 1 ;;
esac
grep -q "degraded" "$adv_err" || {
    echo "error: budgeted adversarial run missing the stderr warning" >&2
    exit 1
}
rm -f "$adv_err"

echo "== 6/12 supervised batch smoke test =="
# The shipped systems under a 2 s per-attempt watchdog: the adversarial
# job must wind down to a *degraded* (still sound) result, never a
# failure — batch exit 0, summary status "some_degraded".
batch_err=$(mktemp)
batch_json=$(cargo run --release --offline -q --bin srtw -- \
    batch systems/ --jobs 2 --timeout-ms 2000 --json 2>"$batch_err") || {
    echo "error: supervised batch run failed (exit $?)" >&2
    cat "$batch_err" >&2
    exit 1
}
case "$batch_json" in
    *'"some_degraded"'*) : ;;
    *) echo 'error: batch summary not "some_degraded"' >&2; exit 1 ;;
esac
case "$batch_json" in
    *'"failed":0'*) : ;;
    *) echo 'error: supervised batch reported failed jobs' >&2; exit 1 ;;
esac
grep -q "degraded" "$batch_err" || {
    echo "error: degraded batch missing the stderr warning" >&2
    exit 1
}
rm -f "$batch_err"
# Injected synthetic overflow at the first metered op must fail every
# rung of the ladder for every job: exit 4, summary status "some_failed".
set +e
fault_json=$(cargo run --release --offline -q --bin srtw -- \
    batch systems/ --fault overflow@1 --json 2>/dev/null)
fault_rc=$?
set -e
if [ "$fault_rc" -ne 4 ]; then
    echo "error: fault-injected batch exited $fault_rc, expected 4" >&2
    exit 1
fi
case "$fault_json" in
    *'"some_failed"'*) : ;;
    *) echo 'error: fault-injected batch summary not "some_failed"' >&2; exit 1 ;;
esac

echo "== 7/12 performance-regression gate =="
# Newest committed BENCH document vs every older one; the gate watches
# the algorithmic suites whose medians are stable across machines.
bench_docs=$(ls -1 BENCH_*.json 2>/dev/null | sort -t_ -k2 -n -r)
if [ "$(echo "$bench_docs" | wc -l)" -ge 2 ]; then
    # shellcheck disable=SC2086
    cargo run -p srtw-bench --release --offline -q --bin experiments -- \
        gate $bench_docs --factor 1.5 \
        --groups convolution,rbf,server_throughput,fused_pipeline,server_connections,journal_overhead,cache_saturation,warm_restart
else
    echo "skip: fewer than two BENCH_*.json documents committed"
fi

echo "== 8/12 service smoke test =="
# One request over /dev/tcp (no curl in the offline environment): prints
# the full response (head + body) on stdout.
http_req() { # port method target [body-file] [extra-header]
    local port=$1 method=$2 target=$3 body=${4:-} hdr=${5:-}
    exec 9<>"/dev/tcp/127.0.0.1/$port"
    {
        # Connection: close — the server keep-alives by default, and the
        # `cat` below must see EOF after one exchange.
        printf '%s %s HTTP/1.1\r\nHost: srtw\r\nConnection: close\r\n' "$method" "$target"
        [ -n "$hdr" ] && printf '%s\r\n' "$hdr"
        if [ -n "$body" ]; then
            printf 'Content-Length: %s\r\n\r\n' "$(wc -c <"$body")"
            cat "$body"
        else
            # The server requires Content-Length on bodied methods (411
            # otherwise), and 0 is harmless on GET.
            printf 'Content-Length: 0\r\n\r\n'
        fi
    } >&9
    cat <&9
    exec 9<&- 9>&-
}
serve_out=$(mktemp); serve_err=$(mktemp)
# One worker and a queue of one so the flood below actually overflows.
target/release/srtw serve --addr 127.0.0.1:0 --workers 1 --queue 1 \
    >"$serve_out" 2>"$serve_err" &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q "listening on" "$serve_out" && break
    sleep 0.1
done
port=$(sed -n 's/.*:\([0-9]*\)$/\1/p' "$serve_out")
if [ -z "$port" ]; then
    echo "error: srtw serve did not report a listening address" >&2
    kill "$serve_pid" 2>/dev/null; exit 1
fi
# 8a: health.
http_req "$port" GET /healthz | grep -q '"status":"ok"' || {
    echo "error: /healthz did not answer ok" >&2; exit 1
}
# 8b: an exact /analyze must be byte-identical to `analyze --json`
# (runtime_secs, the one measured field, normalized on both sides).
norm_runtime() { sed 's/"runtime_secs":[0-9.e+-]*/"runtime_secs":0/g'; }
srv_doc=$(http_req "$port" POST /analyze systems/decoder.srtw | tail -1 | norm_runtime)
cli_doc=$(target/release/srtw analyze systems/decoder.srtw --json 2>/dev/null | norm_runtime)
if [ "$srv_doc" != "$cli_doc" ]; then
    echo "error: POST /analyze diverged from srtw analyze --json" >&2
    exit 1
fi
# 8c: a deadline-bounded adversarial /analyze degrades soundly (200 with
# "degraded":true), instead of hanging or failing.
http_req "$port" POST /analyze systems/adversarial.srtw "X-Deadline-Ms: 1500" \
    | grep -q '"degraded":true' || {
    echo "error: deadline-bounded /analyze did not report degraded:true" >&2
    exit 1
}
# 8d: flood past the queue bound while the single worker is pinned on a
# slow request: the overflow must shed with 503, never hang or crash.
flood_dir=$(mktemp -d)
http_req "$port" POST /analyze systems/adversarial.srtw "X-Deadline-Ms: 3000" \
    >"$flood_dir/blocker" &
blocker_pid=$!
sleep 0.5
probe_pids=()
for i in $(seq 1 6); do
    http_req "$port" GET /healthz >"$flood_dir/probe$i" 2>/dev/null &
    probe_pids+=("$!")
done
# Wait on the flood jobs by pid — a bare `wait` would also wait on the
# server itself, which has no reason to exit yet.
wait "$blocker_pid" "${probe_pids[@]}"
grep -lq "503 Service Unavailable" "$flood_dir"/probe* || {
    echo "error: flooding past the queue bound produced no 503" >&2
    exit 1
}
grep -q '"degraded":true' "$flood_dir/blocker" || {
    echo "error: the pinned request did not come back degraded" >&2
    exit 1
}
# 8e: graceful drain with in-flight work — POST /shutdown must stop the
# process with exit 0 and leave no leaked process behind.
http_req "$port" POST /analyze systems/decoder.srtw >/dev/null &
sleep 0.2
http_req "$port" POST /shutdown | grep -q '"status":"draining"' || {
    echo "error: POST /shutdown did not answer draining" >&2
    exit 1
}
set +e
wait "$serve_pid"
serve_rc=$?
set -e
if [ "$serve_rc" -ne 0 ]; then
    echo "error: srtw serve exited $serve_rc after graceful drain" >&2
    cat "$serve_err" >&2
    exit 1
fi
if kill -0 "$serve_pid" 2>/dev/null; then
    echo "error: srtw serve process leaked past its drain" >&2
    exit 1
fi
wait
rm -rf "$flood_dir" "$serve_out" "$serve_err"
echo "ok: serve answered, degraded under deadline, shed under flood, drained cleanly"

echo "== 9/12 replicated soak =="
rep_out=$(mktemp); rep_err=$(mktemp)
# Two shared-nothing replicas; replica 0 is armed to abort after its
# 120th request, well inside the first flood wave.
target/release/srtw serve --addr 127.0.0.1:0 --replicas 2 --workers 2 \
    --fault abort@120 >"$rep_out" 2>"$rep_err" &
rep_pid=$!
# The stdout protocol announces the public port, the supervisor admin
# port, and one admin line per replica.
for _ in $(seq 1 100); do
    [ "$(grep -c "admin on" "$rep_out")" -ge 3 ] && break
    sleep 0.1
done
port=$(sed -n 's/^srtw-serve listening on .*:\([0-9]*\)$/\1/p' "$rep_out" | head -1)
admin=$(sed -n 's/^srtw-serve supervisor admin on .*:\([0-9]*\)$/\1/p' "$rep_out" | head -1)
if [ -z "$port" ] || [ -z "$admin" ]; then
    echo "error: replicated serve did not announce its ports" >&2
    cat "$rep_out" "$rep_err" >&2
    kill "$rep_pid" 2>/dev/null; exit 1
fi
# Quorum: both replicas must come up healthy.
for _ in $(seq 1 100); do
    http_req "$admin" GET /readyz 2>/dev/null | grep -q '"status":"ready"' && break
    sleep 0.1
done
http_req "$admin" GET /readyz | grep -q '"status":"ready"' || {
    echo "error: parent /readyz never reached quorum" >&2; exit 1
}
# 9a: byte-identity must hold through the shared listener at replicas=2.
rep_doc=$(http_req "$port" POST /analyze systems/decoder.srtw | tail -1 | norm_runtime)
if [ "$rep_doc" != "$cli_doc" ]; then
    echo "error: replicated POST /analyze diverged from srtw analyze --json" >&2
    exit 1
fi
# 9b: first flood wave (5k connections) — replica 0 aborts mid-wave and
# the supervisor must restart it exactly once.
target/release/srtw flood "127.0.0.1:$port" --count 5000 --concurrency 8 \
    | tee "$rep_out.flood1" | grep -q "flood complete:" || {
    echo "error: first flood wave did not complete" >&2; exit 1
}
for _ in $(seq 1 100); do
    grep -q "; restart in " "$rep_out" && break
    sleep 0.1
done
restarts=$(grep -c "; restart in " "$rep_out" || true)
if [ "$restarts" -ne 1 ]; then
    echo "error: expected exactly 1 replica restart after abort@120, saw $restarts" >&2
    cat "$rep_out" >&2
    exit 1
fi
# Wait for the respawned replica to rejoin the quorum.
for _ in $(seq 1 100); do
    http_req "$admin" GET /readyz 2>/dev/null | grep -q '"status":"ready"' && break
    sleep 0.1
done
# The surviving (unfaulted) replica's pid: the announce of replica 1.
surv_pid=$(sed -n 's/^srtw-serve replica 1 pid \([0-9]*\) .*/\1/p' "$rep_out" | head -1)
settle_fds() { # pid -> prints a settled fd count (waits out transient conns)
    local pid=$1 prev=-1 cur
    for _ in $(seq 1 50); do
        cur=$(ls "/proc/$pid/fd" 2>/dev/null | wc -l)
        [ "$cur" = "$prev" ] && break
        prev=$cur
        sleep 0.1
    done
    echo "$cur"
}
rss_of() { awk '/^VmRSS:/ {print $2}' "/proc/$1/status"; }
fds_before=$(settle_fds "$surv_pid")
rss_before=$(rss_of "$surv_pid")
# 9c: second flood wave (5k more — 10k total): RSS flat, no fd creep.
target/release/srtw flood "127.0.0.1:$port" --count 5000 --concurrency 8 \
    | grep -q "flood complete:" || {
    echo "error: second flood wave did not complete" >&2; exit 1
}
fds_after=$(settle_fds "$surv_pid")
rss_after=$(rss_of "$surv_pid")
if [ "$fds_before" != "$fds_after" ]; then
    echo "error: surviving replica leaked fds across the flood ($fds_before -> $fds_after)" >&2
    exit 1
fi
awk -v a="$rss_before" -v b="$rss_after" 'BEGIN {
    if (b > a * 1.10 || b < a * 0.90) {
        printf "error: replica RSS not flat across the flood (%s kB -> %s kB)\n", a, b
        exit 1
    }
}' || exit 1
# 9d: SIGTERM to the parent drains the whole tree: exit 0, no orphans.
replica_pids=$(sed -n 's/^srtw-serve replica [0-9]* pid \([0-9]*\) .*/\1/p' "$rep_out" | sort -u)
kill -TERM "$rep_pid"
set +e
wait "$rep_pid"
rep_rc=$?
set -e
if [ "$rep_rc" -ne 0 ]; then
    echo "error: replicated serve exited $rep_rc after SIGTERM drain" >&2
    cat "$rep_err" >&2
    exit 1
fi
for pid in $replica_pids; do
    if kill -0 "$pid" 2>/dev/null; then
        echo "error: replica $pid orphaned past the supervisor's drain" >&2
        exit 1
    fi
done
rm -f "$rep_out" "$rep_out.flood1" "$rep_err"
echo "ok: 10k-connection soak over 2 replicas — one abort recovered, flat RSS, no fd leak, clean drain"

echo "== 10/12 durable batch crash recovery =="
# 100 copies of the fast decoder system: enough fsync'd records that a
# mid-run SIGKILL reliably lands between the first and the last.
jr_dir=$(mktemp -d)
for i in $(seq -w 1 100); do cp systems/decoder.srtw "$jr_dir/job-$i.srtw"; done
norm_batch() {
    sed -e 's/"runtime_secs":[0-9.e+-]*/"runtime_secs":0/g' \
        -e 's/"wall_ms":[0-9.e+-]*/"wall_ms":0/g'
}
# Reference: the same batch, uninterrupted.
target/release/srtw batch "$jr_dir" --jobs 1 --json \
    | norm_batch >"$jr_dir/clean.json"
# 10a: SIGKILL mid-run, then --resume. Poll the journal until it holds at
# least one record past its 20-byte header before pulling the trigger.
target/release/srtw batch "$jr_dir" --jobs 1 --json \
    --journal "$jr_dir/journal.wal" >/dev/null 2>&1 &
batch_pid=$!
for _ in $(seq 1 500); do
    jsize=$(stat -c %s "$jr_dir/journal.wal" 2>/dev/null || echo 0)
    [ "$jsize" -gt 20 ] && break
    sleep 0.01
done
kill -9 "$batch_pid" 2>/dev/null || true
set +e
wait "$batch_pid" 2>/dev/null
set -e
resume_err=$(mktemp)
target/release/srtw batch "$jr_dir" --jobs 1 --json \
    --journal "$jr_dir/journal.wal" --resume 2>"$resume_err" \
    | norm_batch >"$jr_dir/resumed.json" || {
    echo "error: resumed batch failed" >&2; cat "$resume_err" >&2; exit 1
}
replayed=$(sed -n 's/^journal: replayed \([0-9]*\) completed job(s).*/\1/p' "$resume_err")
if [ -z "$replayed" ] || [ "$replayed" -lt 1 ]; then
    echo "error: resume replayed no journaled jobs (journal was $jsize bytes)" >&2
    cat "$resume_err" >&2
    exit 1
fi
if ! diff -q "$jr_dir/clean.json" "$jr_dir/resumed.json" >/dev/null; then
    echo "error: resumed report is not byte-identical to the uninterrupted run" >&2
    diff "$jr_dir/clean.json" "$jr_dir/resumed.json" >&2 | head -5
    exit 1
fi
# 10b: deterministic torn-write crash — the armed fault tears the 3rd
# append mid-frame (exit 3); the resume must replay exactly 2 jobs and
# still reproduce the reference bytes.
set +e
target/release/srtw batch "$jr_dir" --jobs 1 --json \
    --journal "$jr_dir/torn.wal" --fault torn@3 >/dev/null 2>&1
torn_rc=$?
set -e
if [ "$torn_rc" -ne 3 ]; then
    echo "error: torn@3 batch exited $torn_rc, expected 3" >&2
    exit 1
fi
target/release/srtw batch "$jr_dir" --jobs 1 --json \
    --journal "$jr_dir/torn.wal" --resume 2>"$resume_err" \
    | norm_batch >"$jr_dir/torn-resumed.json" || {
    echo "error: torn-journal resume failed" >&2; cat "$resume_err" >&2; exit 1
}
grep -q "replayed 2 completed job(s)" "$resume_err" || {
    echo "error: torn@3 resume did not replay exactly 2 jobs" >&2
    cat "$resume_err" >&2
    exit 1
}
if ! diff -q "$jr_dir/clean.json" "$jr_dir/torn-resumed.json" >/dev/null; then
    echo "error: torn-journal resume diverged from the uninterrupted run" >&2
    exit 1
fi
rm -rf "$jr_dir" "$resume_err"
echo "ok: journaled batch survived SIGKILL and a torn write — resume replayed, bytes identical"

echo "== 11/12 cache + delta smoke test =="
cache_out=$(mktemp); cache_err=$(mktemp)
target/release/srtw serve --addr 127.0.0.1:0 --workers 2 \
    >"$cache_out" 2>"$cache_err" &
cache_pid=$!
for _ in $(seq 1 100); do
    grep -q "listening on" "$cache_out" && break
    sleep 0.1
done
port=$(sed -n 's/.*:\([0-9]*\)$/\1/p' "$cache_out")
if [ -z "$port" ]; then
    echo "error: srtw serve did not report a listening address" >&2
    kill "$cache_pid" 2>/dev/null; exit 1
fi
# 11a: the same system twice — the second answer must replay the first's
# bytes *verbatim* (not merely modulo runtime) and /stats must record
# exactly one hit against one miss.
first=$(http_req "$port" POST /analyze systems/decoder.srtw | tail -1)
second=$(http_req "$port" POST /analyze systems/decoder.srtw | tail -1)
if [ "$first" != "$second" ]; then
    echo "error: repeated POST /analyze bodies differ (cache did not replay)" >&2
    exit 1
fi
stats=$(http_req "$port" GET /stats | tail -1)
case "$stats" in
    *'"cache_hits":1'*) : ;;
    *) echo "error: /stats did not record the cache hit: $stats" >&2; exit 1 ;;
esac
case "$stats" in
    *'"cache_misses":1'*) : ;;
    *) echo "error: /stats miss counter wrong after two identical POSTs: $stats" >&2; exit 1 ;;
esac
# 11b: a delta edit over the warm base must answer byte-identically
# (modulo runtime_secs) to a cold CLI run of the edited system.
delta_dir=$(mktemp -d)
{ cat systems/decoder.srtw; printf '@delta\ndeadline decoder B 24\n'; } >"$delta_dir/delta.body"
sed 's/deadline=25/deadline=24/' systems/decoder.srtw >"$delta_dir/edited.srtw"
delta_doc=$(http_req "$port" POST /analyze/delta "$delta_dir/delta.body" | tail -1 | norm_runtime)
cold_doc=$(target/release/srtw analyze "$delta_dir/edited.srtw" --json 2>/dev/null | norm_runtime)
if [ "$delta_doc" != "$cold_doc" ]; then
    echo "error: POST /analyze/delta diverged from a cold CLI run of the edited system" >&2
    exit 1
fi
# 11c: graceful drain, exit 0.
http_req "$port" POST /shutdown | grep -q '"status":"draining"' || {
    echo "error: POST /shutdown did not answer draining" >&2
    exit 1
}
set +e
wait "$cache_pid"
cache_rc=$?
set -e
if [ "$cache_rc" -ne 0 ]; then
    echo "error: srtw serve exited $cache_rc after the cache smoke test" >&2
    cat "$cache_err" >&2
    exit 1
fi
rm -rf "$delta_dir" "$cache_out" "$cache_err"
echo "ok: cache hit replayed verbatim, delta matched a cold run, drained cleanly"

echo "== 12/12 persistent cache smoke + crash sweep =="
# Helper: start `srtw serve` with the given extra args, wait for the
# port, and leave $p_pid/$p_port/$p_out/$p_err set for the caller.
p_start() {
    p_out=$(mktemp); p_err=$(mktemp)
    target/release/srtw serve --addr 127.0.0.1:0 --workers 2 "$@" \
        >"$p_out" 2>"$p_err" &
    p_pid=$!
    for _ in $(seq 1 100); do
        grep -q "listening on" "$p_out" && break
        sleep 0.1
    done
    p_port=$(sed -n 's/.*:\([0-9]*\)$/\1/p' "$p_out")
    if [ -z "$p_port" ]; then
        echo "error: srtw serve (persist) did not report a listening address" >&2
        cat "$p_err" >&2
        kill "$p_pid" 2>/dev/null; exit 1
    fi
}
p_stop() {
    http_req "$p_port" POST /shutdown >/dev/null
    set +e
    wait "$p_pid"
    p_rc=$?
    set -e
    if [ "$p_rc" -ne 0 ]; then
        echo "error: srtw serve (persist) exited $p_rc after drain" >&2
        cat "$p_err" >&2
        exit 1
    fi
}
pers_dir=$(mktemp -d)
# 12a: warm restart. Cache a result, drain, restart a brand-new process
# over the same spill directory: the very first POST must replay the
# stored bytes *verbatim* as a hit, with zero cold misses.
p_start --persist "$pers_dir/spill"
seeded=$(http_req "$p_port" POST /analyze systems/decoder.srtw | tail -1)
p_stop
first_out=$p_out; first_err=$p_err
p_start --persist "$pers_dir/spill"
revived=$(http_req "$p_port" POST /analyze systems/decoder.srtw | tail -1)
if [ "$seeded" != "$revived" ]; then
    echo "error: restart-warm POST /analyze did not replay the stored bytes verbatim" >&2
    exit 1
fi
stats=$(http_req "$p_port" GET /stats | tail -1)
case "$stats" in
    *'"persist_loaded":1'*'"cache_hits":1'*|*'"cache_hits":1'*'"persist_loaded":1'*) : ;;
    *) echo "error: restart did not warm-load the spill: $stats" >&2; exit 1 ;;
esac
case "$stats" in
    *'"cache_misses":0'*) : ;;
    *) echo "error: a warm restart recomputed: $stats" >&2; exit 1 ;;
esac
p_stop
rm -f "$first_out" "$first_err" "$p_out" "$p_err"
# 12b: crash-point sweep. Two systems; the second spill append is broken
# by each fault kind in turn. The faulted server must keep answering
# correct bytes (degrading cold with a typed warning), and a restart
# must land in exactly two states: the durable record warm-and-byte-
# identical, the faulted one cold-recomputed-but-correct.
sed 's/deadline=25/deadline=24/' systems/decoder.srtw >"$pers_dir/edited.srtw"
edited_cli=$(target/release/srtw analyze "$pers_dir/edited.srtw" --json 2>/dev/null | norm_runtime)
for kind in pers-torn pers-corrupt pers-enospc; do
    sweep_dir="$pers_dir/$kind"
    p_start --persist "$sweep_dir" --fault "$kind@2"
    sys1=$(http_req "$p_port" POST /analyze systems/decoder.srtw | tail -1)
    sys2=$(http_req "$p_port" POST /analyze "$pers_dir/edited.srtw" | tail -1)
    if [ "$(echo "$sys2" | norm_runtime)" != "$edited_cli" ]; then
        echo "error: $kind@2 changed the faulted response's bytes" >&2
        exit 1
    fi
    grep -q "srtw-persist:" "$p_err" || {
        echo "error: $kind@2 fired without a typed srtw-persist warning" >&2
        cat "$p_err" >&2
        exit 1
    }
    p_stop
    rm -f "$p_out" "$p_err"
    p_start --persist "$sweep_dir"
    warm1=$(http_req "$p_port" POST /analyze systems/decoder.srtw | tail -1)
    cold2=$(http_req "$p_port" POST /analyze "$pers_dir/edited.srtw" | tail -1)
    if [ "$warm1" != "$sys1" ]; then
        echo "error: $kind sweep: the durable record did not replay verbatim after restart" >&2
        exit 1
    fi
    if [ "$(echo "$cold2" | norm_runtime)" != "$edited_cli" ]; then
        echo "error: $kind sweep: the cold recompute diverged after restart" >&2
        exit 1
    fi
    stats=$(http_req "$p_port" GET /stats | tail -1)
    case "$stats" in
        *'"cache_hits":1'*'"cache_misses":1'*|*'"cache_misses":1'*'"cache_hits":1'*) : ;;
        *) echo "error: $kind sweep: not exactly warm+cold after restart: $stats" >&2; exit 1 ;;
    esac
    p_stop
    rm -f "$p_out" "$p_err"
done
rm -rf "$pers_dir"
echo "ok: warm restart replayed verbatim; every persistence fault degraded cold with a warning, never a wrong byte"

echo "verify: OK"
