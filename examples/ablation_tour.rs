//! A tour of the abstraction-horizon knob: how the structural analysis
//! interpolates between the RTC baseline and the full per-path analysis.
//!
//! ```text
//! cargo run --example ablation_tour
//! ```

use srtw::{
    generate_drt, q, rtc_delay, structural_delay, structural_delay_with, AnalysisConfig, Curve,
    DrtGenConfig, Q,
};

fn main() {
    let cfg = DrtGenConfig {
        vertices: 10,
        extra_edges: 10,
        target_utilization: Some(q(7, 10)),
        ..DrtGenConfig::default()
    };
    let task = generate_drt(&cfg, 2026);
    let beta = Curve::rate_latency(q(4, 5), Q::int(5));

    let full = structural_delay(&task, &beta).expect("stable");
    let rtc = rtc_delay(&task, &beta).expect("stable");
    println!(
        "task: {} vertices, {} edges, U = {}",
        task.num_vertices(),
        task.num_edges(),
        full.utilization
    );
    println!("busy window ≤ {}", full.busy_window);
    println!("RTC baseline bound: {}\n", rtc.bound);

    println!("{:<10} {:>14} {:>14} {:>10}", "fraction", "avg bound", "max bound", "paths");
    for k in 0..=8 {
        let cfg = AnalysisConfig {
            horizon_fraction: Some(q(k, 8)),
            ..Default::default()
        };
        let a = structural_delay_with(&task, &beta, &cfg).expect("stable");
        let sum: Q = a
            .per_vertex
            .iter()
            .map(|b| b.bound)
            .fold(Q::ZERO, |x, y| x + y);
        let avg = sum / Q::int(a.per_vertex.len() as i128);
        let max = a
            .per_vertex
            .iter()
            .map(|b| b.bound)
            .fold(Q::ZERO, Q::max);
        println!(
            "{:<10} {:>14.3} {:>14.3} {:>10}",
            format!("{k}/8"),
            avg.to_f64(),
            max.to_f64(),
            a.paths_retained
        );
        if k == 0 {
            assert_eq!(max, rtc.bound, "fraction 0 must reproduce RTC");
        }
    }
    println!(
        "\nfull structural: avg {:.3}, stream max {} (== RTC: {})",
        full.per_vertex
            .iter()
            .map(|b| b.bound)
            .fold(Q::ZERO, |x, y| x + y)
            .to_f64()
            / full.per_vertex.len() as f64,
        full.stream_bound,
        full.stream_bound == rtc.bound
    );
}
