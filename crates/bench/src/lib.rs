//! # srtw-bench — experiment harness
//!
//! Regenerates every table and figure of the evaluation (see
//! `EXPERIMENTS.md` at the workspace root for the per-experiment index and
//! the recorded outputs). Each experiment is a pure function printing a
//! plain-text table; the `experiments` binary dispatches on experiment ids
//! and additionally runs the in-house benchmark [`suites`] (timed by
//! [`timing`]) to produce `BENCH_1.json`.

#![warn(missing_docs)]
// The `count-allocs` feature implements `GlobalAlloc`, which is inherently
// an `unsafe impl`; everything else in the crate stays free of unsafe code.
#![cfg_attr(not(feature = "count-allocs"), forbid(unsafe_code))]
#![cfg_attr(feature = "count-allocs", deny(unsafe_op_in_unsafe_fn))]

pub mod gate;
pub mod suites;
pub mod timing;

use srtw_core::{
    backlog_bound, fifo_rtc, fifo_structural, rtc_delay, structural_delay,
    structural_delay_with, AnalysisConfig,
};
use srtw_gen::{generate_drt, generate_task_set, DrtGenConfig};
use srtw_minplus::{q, Curve, Q};
use srtw_resource::{Server, TdmaServer};
use srtw_sim::{earliest_random_walk, simulate_fifo, ServiceProcess};
use srtw_workload::{DrtTask, DrtTaskBuilder};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One experiment's output: a titled table that can be printed and/or
/// exported as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id (`e1`…), used as the CSV file stem.
    pub id: &'static str,
    /// Human-readable description (setup parameters included).
    pub title: String,
    /// Column names.
    pub header: Vec<&'static str>,
    /// Row-major cells, already formatted.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    fn new(id: &'static str, title: impl Into<String>, header: Vec<&'static str>) -> Table {
        Table {
            id,
            title: title.into(),
            header,
            rows: Vec::new(),
        }
    }

    fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        println!("{}: {}", self.id.to_uppercase(), self.title);
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: Vec<&str>| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(self.header.to_vec()));
        for r in &self.rows {
            println!("{}", fmt_row(r.iter().map(String::as_str).collect()));
        }
    }

    /// Writes the table as `<dir>/<id>.csv`, returning the path.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "# {}", self.title)?;
        writeln!(f, "{}", self.header.join(","))?;
        for r in &self.rows {
            writeln!(f, "{}", r.join(","))?;
        }
        Ok(path)
    }
}

/// Mean of rational values as `f64` (display only).
fn mean(values: &[Q]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().map(|v| v.to_f64()).sum::<f64>() / values.len() as f64
}

/// Average per-vertex structural bound of one analysis.
fn avg_vertex_bound(a: &srtw_core::DelayAnalysis) -> Q {
    let sum: Q = a
        .per_vertex
        .iter()
        .map(|b| b.bound)
        .fold(Q::ZERO, |x, y| x + y);
    sum / Q::int(a.per_vertex.len() as i128)
}

/// Worst simulated delay of a task over `runs` random earliest traces on a
/// fluid server of the given `rate` (which dominates every lower service
/// curve of that rate used in the analyses).
fn simulated_max(task: &DrtTask, rate: Q, runs: u64, horizon: Q) -> Q {
    let service = ServiceProcess::fluid(rate);
    let mut worst = Q::ZERO;
    for seed in 0..runs {
        let trace = earliest_random_walk(task, horizon, None, seed);
        let out = simulate_fifo(
            std::slice::from_ref(task),
            std::slice::from_ref(&trace),
            &service,
        );
        worst = worst.max(out.max_delay());
    }
    worst
}

fn batch_cfg(vertices: usize, u: Q) -> DrtGenConfig {
    DrtGenConfig {
        vertices,
        extra_edges: vertices,
        separation_range: (5, 40),
        wcet_range: (1, 9),
        target_utilization: Some(u),
        deadline_factor: None,
    }
}

/// E1 — delay bounds vs server bandwidth (figure).
///
/// Random 8-vertex graphs at U = 0.6 on rate-latency servers with
/// decreasing bandwidth: the gap between the RTC bound and the average
/// per-type structural bound widens as the server tightens, and the
/// simulated maximum stays below both.
pub fn e1_bounds_vs_bandwidth() -> Table {
    let mut t = Table::new(
        "e1",
        "delay bounds vs server bandwidth (n=8, U=3/5, latency=5, 20 graphs/point)",
        vec!["rate", "RTC", "structural-avg", "RTC/struct", "sim-max"],
    );
    for rnum in [13i128, 14, 15, 16, 17, 18, 20] {
        let rate = q(rnum, 20);
        let beta = Curve::rate_latency(rate, Q::int(5));
        let mut rtcs = Vec::new();
        let mut savg = Vec::new();
        let mut sims = Vec::new();
        for seed in 0..20 {
            let task = generate_drt(&batch_cfg(8, q(3, 5)), 100 + seed);
            let s = structural_delay(&task, &beta).expect("stable");
            let r = rtc_delay(&task, &beta).expect("stable");
            rtcs.push(r.bound);
            savg.push(avg_vertex_bound(&s));
            sims.push(simulated_max(&task, rate, 10, Q::int(300)));
        }
        t.row(vec![
            format!("{rnum}/20"),
            format!("{:.2}", mean(&rtcs)),
            format!("{:.2}", mean(&savg)),
            format!("{:.2}", mean(&rtcs) / mean(&savg)),
            format!("{:.2}", mean(&sims)),
        ]);
    }
    t
}

/// E2 — tightness ratio vs graph size (figure).
pub fn e2_ratio_vs_size() -> Table {
    let mut t = Table::new(
        "e2",
        "attribution gain (RTC / structural-avg) vs graph size (U=3/5, rate=4/5, 30 graphs/point)",
        vec!["vertices", "RTC", "structural-avg", "ratio"],
    );
    let beta = Curve::rate_latency(q(4, 5), Q::int(4));
    for n in [2usize, 4, 6, 8, 12, 16, 20] {
        let mut rtcs = Vec::new();
        let mut savg = Vec::new();
        for seed in 0..30 {
            let task = generate_drt(&batch_cfg(n, q(3, 5)), 200 + seed);
            let s = structural_delay(&task, &beta).expect("stable");
            let r = rtc_delay(&task, &beta).expect("stable");
            rtcs.push(r.bound);
            savg.push(avg_vertex_bound(&s));
        }
        t.row(vec![
            n.to_string(),
            format!("{:.2}", mean(&rtcs)),
            format!("{:.2}", mean(&savg)),
            format!("{:.2}", mean(&rtcs) / mean(&savg)),
        ]);
    }
    t
}

/// E3 — analysis runtime and pruning effectiveness vs graph size (figure).
pub fn e3_runtime_vs_size() -> Table {
    let mut t = Table::new(
        "e3",
        "structural analysis runtime vs graph size (U=3/5, rate=4/5, 10 graphs/point)",
        vec!["vertices", "ms/graph", "paths", "generated", "pruned-ratio"],
    );
    let beta = Curve::rate_latency(q(4, 5), Q::int(4));
    for n in [5usize, 10, 15, 20, 30, 40, 50] {
        let mut total_ms = 0.0;
        let mut paths = 0usize;
        let mut generated = 0usize;
        let mut pruned = 0usize;
        for seed in 0..10 {
            let task = generate_drt(&batch_cfg(n, q(3, 5)), 300 + seed);
            let t0 = Instant::now();
            let s = structural_delay(&task, &beta).expect("stable");
            total_ms += t0.elapsed().as_secs_f64() * 1000.0;
            paths += s.paths_retained;
            generated += s.paths_generated;
            pruned += s.paths_pruned;
        }
        t.row(vec![
            n.to_string(),
            format!("{:.2}", total_ms / 10.0),
            (paths / 10).to_string(),
            (generated / 10).to_string(),
            format!("{:.3}", pruned as f64 / generated.max(1) as f64),
        ]);
    }
    t
}

/// E4 — ablation: bound quality and effort vs abstraction horizon (figure).
pub fn e4_ablation_fraction() -> Table {
    let mut t = Table::new(
        "e4",
        "abstraction-horizon ablation (n=10, U=7/10, rate=4/5, 15 graphs)",
        vec!["fraction", "structural-avg", "paths", "ms/graph"],
    );
    let beta = Curve::rate_latency(q(4, 5), Q::int(5));
    let tasks: Vec<DrtTask> = (0..15)
        .map(|seed| generate_drt(&batch_cfg(10, q(7, 10)), 400 + seed))
        .collect();
    for k in 0..=8i128 {
        let cfg = AnalysisConfig {
            horizon_fraction: Some(q(k, 8)),
            ..Default::default()
        };
        let mut avgs = Vec::new();
        let mut paths = 0usize;
        let mut ms = 0.0;
        for task in &tasks {
            let t0 = Instant::now();
            let a = structural_delay_with(task, &beta, &cfg).expect("stable");
            ms += t0.elapsed().as_secs_f64() * 1000.0;
            paths += a.paths_retained;
            avgs.push(avg_vertex_bound(&a));
        }
        t.row(vec![
            format!("{k}/8"),
            format!("{:.2}", mean(&avgs)),
            (paths / tasks.len()).to_string(),
            format!("{:.2}", ms / tasks.len() as f64),
        ]);
    }
    t
}

/// The hand-built video-decoder case-study task (shared with E5 and docs).
pub fn video_decoder() -> DrtTask {
    let mut b = DrtTaskBuilder::new("video-decoder");
    let i = b.vertex_with_deadline("I-frame", Q::int(12), Q::int(60));
    let p = b.vertex_with_deadline("P-frame", Q::int(6), Q::int(35));
    let bb = b.vertex_with_deadline("B-frame", Q::int(3), Q::int(25));
    let period = Q::int(15);
    b.edge(i, bb, period);
    b.edge(bb, bb, period);
    b.edge(bb, p, period);
    b.edge(p, bb, period);
    b.edge(p, i, Q::int(45));
    b.build().expect("valid decoder graph")
}

/// E5 — case study (table): the video decoder on a TDMA accelerator slot.
pub fn e5_case_study() -> Table {
    let task = video_decoder();
    let server = TdmaServer::new(Q::int(9), Q::int(16), Q::ONE).expect("valid tdma");
    let beta = server.beta_lower();
    let s = structural_delay(&task, &beta).expect("stable");
    let r = rtc_delay(&task, &beta).expect("stable");
    // Simulated per-type maxima on the concrete worst-offset TDMA process.
    let service = ServiceProcess::tdma(Q::int(9), Q::int(16), Q::ONE, Q::int(7));
    let mut sim_per_vertex = vec![Q::ZERO; task.num_vertices()];
    for seed in 0..40 {
        let trace = earliest_random_walk(&task, Q::int(600), None, seed);
        let out = simulate_fifo(
            std::slice::from_ref(&task),
            std::slice::from_ref(&trace),
            &service,
        );
        for v in task.vertex_ids() {
            sim_per_vertex[v.index()] = sim_per_vertex[v.index()].max(out.max_delay_of(0, v));
        }
    }
    let rtc_ok = s
        .per_vertex
        .iter()
        .all(|vb| r.bound <= task.deadline(vb.vertex).expect("deadline"));
    let mut t = Table::new(
        "e5",
        format!(
            "video decoder on TDMA(slot=9, cycle=16): per-frame-type bounds              (schedulable: structural={}, RTC={})",
            s.schedulable(&task),
            rtc_ok
        ),
        vec!["type", "wcet", "deadline", "structural", "RTC", "sim-max"],
    );
    for vb in &s.per_vertex {
        t.row(vec![
            vb.label.clone(),
            task.wcet(vb.vertex).to_string(),
            task.deadline(vb.vertex).expect("deadline").to_string(),
            vb.bound.to_string(),
            r.bound.to_string(),
            sim_per_vertex[vb.vertex.index()].to_string(),
        ]);
    }
    t
}

/// E6 — acceptance ratio vs utilization (figure).
pub fn e6_acceptance_ratio() -> Table {
    let mut t = Table::new(
        "e6",
        "acceptance ratio vs utilization (n=6, deadlines=3×min-in-sep, rate=1, latency=2, 100 sets/point)",
        vec!["U", "structural", "RTC"],
    );
    let beta = Curve::rate_latency(Q::ONE, Q::int(2));
    for unum in 1..=9i128 {
        let u = q(unum, 10);
        let mut acc_s = 0usize;
        let mut acc_r = 0usize;
        const SETS: u64 = 100;
        for seed in 0..SETS {
            let cfg = DrtGenConfig {
                deadline_factor: Some(Q::int(3)),
                ..batch_cfg(6, u)
            };
            let task = generate_drt(&cfg, 500 + seed);
            let (s, r) = match (structural_delay(&task, &beta), rtc_delay(&task, &beta)) {
                (Ok(s), Ok(r)) => (s, r),
                _ => continue, // unstable: rejected by both
            };
            if s.schedulable(&task) {
                acc_s += 1;
            }
            if task
                .vertex_ids()
                .all(|v| r.bound <= task.deadline(v).expect("deadline set"))
            {
                acc_r += 1;
            }
        }
        t.row(vec![
            format!("{unum}/10"),
            format!("{:.2}", acc_s as f64 / SETS as f64),
            format!("{:.2}", acc_r as f64 / SETS as f64),
        ]);
    }
    t
}

/// E7 — backlog bound vs bandwidth (figure).
pub fn e7_backlog_vs_bandwidth() -> Table {
    let mut t = Table::new(
        "e7",
        "backlog bound vs server bandwidth (n=8, U=3/5, 20 graphs/point)",
        vec!["rate", "backlog-bound", "sim-max"],
    );
    for rnum in [13i128, 15, 17, 20] {
        let rate = q(rnum, 20);
        let beta = Curve::rate_latency(rate, Q::int(5));
        let mut bounds = Vec::new();
        let mut sims = Vec::new();
        for seed in 0..20 {
            let task = generate_drt(&batch_cfg(8, q(3, 5)), 100 + seed);
            bounds.push(backlog_bound(std::slice::from_ref(&task), &beta).expect("stable"));
            let service = ServiceProcess::fluid(rate);
            let mut worst = Q::ZERO;
            for ts in 0..10 {
                let trace = earliest_random_walk(&task, Q::int(300), None, ts);
                let out = simulate_fifo(
                    std::slice::from_ref(&task),
                    std::slice::from_ref(&trace),
                    &service,
                );
                worst = worst.max(out.max_backlog);
            }
            sims.push(worst);
        }
        t.row(vec![
            format!("{rnum}/20"),
            format!("{:.2}", mean(&bounds)),
            format!("{:.2}", mean(&sims)),
        ]);
    }
    t
}

/// E8 — FIFO gateway (table): per-stream structural bounds vs the
/// stream-agnostic FIFO-RTC bound.
pub fn e8_fifo_gateway() -> Table {
    let beta = Curve::rate_latency(Q::ONE, Q::int(2));
    let tasks = generate_task_set(&batch_cfg(5, Q::ONE), 3, q(3, 5), 7);
    let rtc = fifo_rtc(&tasks, &beta).expect("stable");
    let per = fifo_structural(&tasks, &beta, &AnalysisConfig::default()).expect("stable");
    let mut t = Table::new(
        "e8",
        format!(
            "3-stream FIFO gateway (total U=3/5, rate=1, latency=2); FIFO-RTC bound = {}",
            rtc.bound
        ),
        vec!["stream", "vertices", "struct-max", "struct-avg"],
    );
    for (i, a) in per.iter().enumerate() {
        let max = a.per_vertex.iter().map(|b| b.bound).fold(Q::ZERO, Q::max);
        t.row(vec![
            i.to_string(),
            a.per_vertex.len().to_string(),
            format!("{:.2}", max.to_f64()),
            format!("{:.2}", avg_vertex_bound(a).to_f64()),
        ]);
    }
    t
}

/// E9 — tandem analysis (figure): pay bursts only once.
pub fn e9_tandem_pboo() -> Table {
    let mut t = Table::new(
        "e9",
        "tandem of k rate-latency hops: end-to-end vs per-hop bounds (15 graphs, n=6, U=2/5)",
        vec!["hops", "end-to-end", "per-hop-sum", "ratio"],
    );
    let tasks: Vec<DrtTask> = (0..15)
        .map(|seed| generate_drt(&batch_cfg(6, q(2, 5)), 900 + seed))
        .collect();
    for k in 1..=4usize {
        let hops: Vec<Curve> = (0..k)
            .map(|i| Curve::rate_latency(q(4, 5), Q::int(2 + i as i128)))
            .collect();
        let mut e2e = Vec::new();
        let mut phs = Vec::new();
        for task in &tasks {
            let r = srtw_core::tandem_delay(task, &hops).expect("stable tandem");
            e2e.push(r.end_to_end);
            phs.push(r.per_hop_sum);
        }
        t.row(vec![
            k.to_string(),
            format!("{:.2}", mean(&e2e)),
            format!("{:.2}", mean(&phs)),
            format!("{:.2}", mean(&phs) / mean(&e2e)),
        ]);
    }
    t
}

/// E10 — EDF vs FIFO-structural vs RTC acceptance ratio (figure).
pub fn e10_edf_acceptance() -> Table {
    let mut t = Table::new(
        "e10",
        "acceptance ratio vs utilization under three analyses (n=6, deadlines=3×min-in-sep, rate=1, latency=2, 100 sets/point)",
        vec!["U", "EDF", "structural", "RTC"],
    );
    let beta = Curve::rate_latency(Q::ONE, Q::int(2));
    for unum in [4i128, 5, 6, 7, 8, 9] {
        let u = q(unum, 10);
        let mut acc_e = 0usize;
        let mut acc_s = 0usize;
        let mut acc_r = 0usize;
        const SETS: u64 = 100;
        for seed in 0..SETS {
            let cfg = DrtGenConfig {
                deadline_factor: Some(Q::int(3)),
                ..batch_cfg(6, u)
            };
            let task = generate_drt(&cfg, 500 + seed);
            if let Ok(r) = srtw_core::edf_schedulable(std::slice::from_ref(&task), &beta) {
                if r.schedulable {
                    acc_e += 1;
                }
            }
            if let Ok(a) = structural_delay(&task, &beta) {
                if a.schedulable(&task) {
                    acc_s += 1;
                }
            }
            if let Ok(r) = rtc_delay(&task, &beta) {
                if task
                    .vertex_ids()
                    .all(|v| r.bound <= task.deadline(v).expect("deadline set"))
                {
                    acc_r += 1;
                }
            }
        }
        t.row(vec![
            format!("{unum}/10"),
            format!("{:.2}", acc_e as f64 / SETS as f64),
            format!("{:.2}", acc_s as f64 / SETS as f64),
            format!("{:.2}", acc_r as f64 / SETS as f64),
        ]);
    }
    t
}

/// All experiment ids, in order.
pub const ALL_EXPERIMENTS: [&str; 10] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10",
];

/// Builds one experiment's table by id. Returns `None` for an unknown id.
pub fn build_experiment(id: &str) -> Option<Table> {
    Some(match id {
        "e1" => e1_bounds_vs_bandwidth(),
        "e2" => e2_ratio_vs_size(),
        "e3" => e3_runtime_vs_size(),
        "e4" => e4_ablation_fraction(),
        "e5" => e5_case_study(),
        "e6" => e6_acceptance_ratio(),
        "e7" => e7_backlog_vs_bandwidth(),
        "e8" => e8_fifo_gateway(),
        "e9" => e9_tandem_pboo(),
        "e10" => e10_edf_acceptance(),
        _ => return None,
    })
}

/// Runs one experiment by id (or `"all"`), printing its table and writing
/// a CSV next to it when `csv_dir` is given. Returns `false` for an
/// unknown id.
pub fn run_experiment_to(id: &str, csv_dir: Option<&Path>) -> bool {
    if id == "all" {
        for id in ALL_EXPERIMENTS {
            run_experiment_to(id, csv_dir);
            println!();
        }
        return true;
    }
    match build_experiment(id) {
        Some(t) => {
            t.print();
            if let Some(dir) = csv_dir {
                match t.write_csv(dir) {
                    Ok(path) => println!("(csv written to {})", path.display()),
                    Err(e) => eprintln!("csv write failed: {e}"),
                }
            }
            true
        }
        None => false,
    }
}

/// Runs one experiment by id (`"e1"`–`"e10"`) or `"all"`, printing to
/// stdout. Returns `false` for an unknown id.
pub fn run_experiment(id: &str) -> bool {
    run_experiment_to(id, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_decoder_is_valid_and_stable() {
        let t = video_decoder();
        assert_eq!(t.num_vertices(), 3);
        let server = TdmaServer::new(Q::int(9), Q::int(16), Q::ONE).unwrap();
        assert!(structural_delay(&t, &server.beta_lower()).is_ok());
    }

    #[test]
    fn unknown_experiment_rejected() {
        assert!(!run_experiment("nope"));
    }

    #[test]
    fn small_experiment_smoke() {
        // E5 and E8 are cheap enough for the unit-test suite.
        let t5 = build_experiment("e5").unwrap();
        assert_eq!(t5.rows.len(), 3);
        assert_eq!(t5.header.len(), 6);
        let t8 = build_experiment("e8").unwrap();
        assert_eq!(t8.rows.len(), 3);
        assert!(run_experiment("e5"));
    }

    #[test]
    fn csv_export_roundtrip() {
        let t = build_experiment("e8").unwrap();
        let dir = std::env::temp_dir().join("srtw-bench-test");
        let path = t.write_csv(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# 3-stream FIFO gateway"));
        assert!(text.lines().count() >= 5); // title + header + 3 rows
        assert!(text.contains("stream,vertices,struct-max,struct-avg"));
        let _ = std::fs::remove_file(path);
    }
}
