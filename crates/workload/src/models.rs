//! Classical task models as special cases of the digraph model.
//!
//! Periodic, sporadic, and generalized-multiframe (GMF) tasks all embed
//! into [`DrtTask`]s — a single self-loop vertex for (s)periodic tasks, a
//! ring for GMF. The converters here make it easy to mix classical and
//! structural workload in one analysis and serve as the baselines in the
//! experiments.

use crate::digraph::{DrtTask, DrtTaskBuilder};
use crate::error::WorkloadError;
use srtw_minplus::{Curve, Piece, Q, Tail};

/// A strictly periodic task (optionally with release jitter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicTask {
    /// Release period (strictly positive).
    pub period: Q,
    /// Worst-case execution time (strictly positive).
    pub wcet: Q,
    /// Release jitter (non-negative).
    pub jitter: Q,
    /// Relative deadline (defaults to the period if `None`).
    pub deadline: Option<Q>,
}

impl PeriodicTask {
    /// Creates a jitter-free periodic task with implicit deadline.
    pub fn new(period: Q, wcet: Q) -> PeriodicTask {
        PeriodicTask {
            period,
            wcet,
            jitter: Q::ZERO,
            deadline: None,
        }
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if !self.period.is_positive() {
            return Err(WorkloadError::InvalidParameter {
                reason: "period must be positive",
            });
        }
        if !self.wcet.is_positive() {
            return Err(WorkloadError::InvalidParameter {
                reason: "wcet must be positive",
            });
        }
        if self.jitter.is_negative() {
            return Err(WorkloadError::InvalidParameter {
                reason: "jitter must be non-negative",
            });
        }
        Ok(())
    }

    /// Embeds the task (ignoring jitter, which the graph model cannot
    /// shrink below the period) as a one-vertex self-loop digraph. With
    /// jitter zero the embedding is exact; with jitter the digraph is a
    /// sporadic relaxation using separation `period − jitter` (sound).
    pub fn to_drt(&self, name: impl Into<String>) -> Result<DrtTask, WorkloadError> {
        self.validate()?;
        let sep = self.period - self.jitter;
        if !sep.is_positive() {
            return Err(WorkloadError::InvalidParameter {
                reason: "jitter must be smaller than the period for a digraph embedding",
            });
        }
        let mut b = DrtTaskBuilder::new(name);
        let v = b.vertex("job", self.wcet);
        if let Some(d) = self.deadline {
            b.set_deadline(v, d);
        } else {
            b.set_deadline(v, self.period);
        }
        b.edge(v, v, sep);
        b.build()
    }

    /// The exact upper arrival curve `α(Δ) = e · (⌊(Δ + j) / p⌋ + 1)`
    /// (the classical PJ curve).
    ///
    /// # Examples
    ///
    /// ```
    /// use srtw_workload::PeriodicTask;
    /// use srtw_minplus::Q;
    /// let t = PeriodicTask::new(Q::int(10), Q::int(3));
    /// let a = t.arrival_curve();
    /// assert_eq!(a.eval(Q::ZERO), Q::int(3));
    /// assert_eq!(a.eval(Q::int(10)), Q::int(6));
    /// ```
    pub fn arrival_curve(&self) -> Curve {
        let p = self.period;
        let e = self.wcet;
        let j = self.jitter;
        // Value at 0: e · (⌊j/p⌋ + 1); next jump where (Δ + j)/p crosses the
        // next integer: Δ₁ = (⌊j/p⌋ + 1)·p − j.
        let k0 = Q::int(j.checked_div(p).expect("p > 0").floor()) + Q::ONE;
        let t1 = k0 * p - j;
        if t1.is_zero() || t1 == p {
            // Phase aligns with the grid: plain staircase (possibly lifted).
            return Curve::staircase(p, e).shift_up(e * (k0 - Q::ONE));
        }
        let pieces = vec![
            Piece::new(Q::ZERO, e * k0, Q::ZERO),
            Piece::new(t1, e * (k0 + Q::ONE), Q::ZERO),
        ];
        Curve::new(
            pieces,
            Tail::Periodic {
                pattern_start: 1,
                period: p,
                increment: e,
            },
        )
        .expect("periodic arrival curve invalid")
    }
}

/// A sporadic task: minimum inter-arrival separation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SporadicTask {
    /// Minimum inter-arrival time (strictly positive).
    pub min_interarrival: Q,
    /// Worst-case execution time (strictly positive).
    pub wcet: Q,
    /// Relative deadline (defaults to `min_interarrival` if `None`).
    pub deadline: Option<Q>,
}

impl SporadicTask {
    /// Creates a sporadic task with implicit deadline.
    pub fn new(min_interarrival: Q, wcet: Q) -> SporadicTask {
        SporadicTask {
            min_interarrival,
            wcet,
            deadline: None,
        }
    }

    /// Embeds the task exactly as a one-vertex self-loop digraph (the DRT
    /// semantics of minimum separations *is* the sporadic semantics).
    pub fn to_drt(&self, name: impl Into<String>) -> Result<DrtTask, WorkloadError> {
        if !self.min_interarrival.is_positive() || !self.wcet.is_positive() {
            return Err(WorkloadError::InvalidParameter {
                reason: "sporadic task needs positive separation and wcet",
            });
        }
        let mut b = DrtTaskBuilder::new(name);
        let v = b.vertex("job", self.wcet);
        b.set_deadline(v, self.deadline.unwrap_or(self.min_interarrival));
        b.edge(v, v, self.min_interarrival);
        b.build()
    }

    /// The exact upper arrival curve `α(Δ) = e · (⌊Δ/p⌋ + 1)`.
    pub fn arrival_curve(&self) -> Curve {
        Curve::staircase(self.min_interarrival, self.wcet)
    }
}

/// One frame of a generalized multiframe (GMF) task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// WCET of this frame's job.
    pub wcet: Q,
    /// Minimum separation to the *next* frame's release.
    pub separation: Q,
    /// Relative deadline of this frame's job, if any.
    pub deadline: Option<Q>,
}

/// A generalized multiframe task: a fixed cyclic sequence of frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiframeTask {
    /// The frames, visited cyclically in order.
    pub frames: Vec<Frame>,
}

impl MultiframeTask {
    /// Creates a GMF task from `(wcet, separation)` pairs.
    pub fn new(frames: impl IntoIterator<Item = (Q, Q)>) -> MultiframeTask {
        MultiframeTask {
            frames: frames
                .into_iter()
                .map(|(wcet, separation)| Frame {
                    wcet,
                    separation,
                    deadline: None,
                })
                .collect(),
        }
    }

    /// Embeds the task exactly as a ring digraph.
    pub fn to_drt(&self, name: impl Into<String>) -> Result<DrtTask, WorkloadError> {
        if self.frames.is_empty() {
            return Err(WorkloadError::InvalidParameter {
                reason: "multiframe task needs at least one frame",
            });
        }
        let mut b = DrtTaskBuilder::new(name);
        let ids: Vec<_> = self
            .frames
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let v = b.vertex(format!("frame{i}"), f.wcet);
                if let Some(d) = f.deadline {
                    b.set_deadline(v, d);
                }
                v
            })
            .collect();
        for (i, f) in self.frames.iter().enumerate() {
            let next = ids[(i + 1) % ids.len()];
            b.edge(ids[i], next, f.separation);
        }
        b.build()
    }
}

/// A node of a recurring-branching task tree: a job plus the alternative
/// continuations (at most one branch is taken per instance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RbNode {
    /// Label for reports.
    pub label: String,
    /// WCET of this node's job.
    pub wcet: Q,
    /// Relative deadline, if any.
    pub deadline: Option<Q>,
    /// Alternative continuations: `(min separation to the child, child)`.
    pub children: Vec<(Q, RbNode)>,
}

impl RbNode {
    /// A leaf node.
    pub fn leaf(label: impl Into<String>, wcet: Q) -> RbNode {
        RbNode {
            label: label.into(),
            wcet,
            deadline: None,
            children: Vec::new(),
        }
    }

    /// Adds an alternative continuation, returning `self` for chaining.
    #[must_use]
    pub fn branch(mut self, separation: Q, child: RbNode) -> RbNode {
        self.children.push((separation, child));
        self
    }
}

/// A recurring-branching task (Baruah's RB model): each instance executes
/// one root-to-leaf path of a tree; after a leaf, the next instance's root
/// may be released no earlier than `restart_separation` after the leaf.
///
/// The embedding into the digraph model is exact: tree edges become graph
/// edges, every leaf links back to the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecurringBranchingTask {
    /// The behaviour tree.
    pub root: RbNode,
    /// Minimum separation from a leaf's release to the next root release.
    pub restart_separation: Q,
}

impl RecurringBranchingTask {
    /// Embeds the task as a digraph (tree edges + leaf→root restarts).
    pub fn to_drt(&self, name: impl Into<String>) -> Result<DrtTask, WorkloadError> {
        if !self.restart_separation.is_positive() {
            return Err(WorkloadError::InvalidParameter {
                reason: "restart separation must be positive",
            });
        }
        let mut b = DrtTaskBuilder::new(name);

        // Iterative DFS: add vertices, remember leaves.
        struct Frame<'a> {
            node: &'a RbNode,
            parent: Option<(crate::digraph::VertexId, Q)>,
        }
        let mut leaves = Vec::new();
        let mut stack = vec![Frame {
            node: &self.root,
            parent: None,
        }];
        let mut root_id = None;
        while let Some(f) = stack.pop() {
            let id = match f.node.deadline {
                Some(d) => b.vertex_with_deadline(f.node.label.clone(), f.node.wcet, d),
                None => b.vertex(f.node.label.clone(), f.node.wcet),
            };
            if let Some((pid, sep)) = f.parent {
                b.edge(pid, id, sep);
            } else {
                root_id = Some(id);
            }
            if f.node.children.is_empty() {
                leaves.push(id);
            }
            for (sep, child) in &f.node.children {
                stack.push(Frame {
                    node: child,
                    parent: Some((id, *sep)),
                });
            }
        }
        let root_id = root_id.expect("tree has a root");
        for leaf in leaves {
            b.edge(leaf, root_id, self.restart_separation);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rbf::Rbf;
    use crate::utilization::long_run_utilization;
    use srtw_minplus::q;

    #[test]
    fn periodic_embedding_matches_arrival_curve() {
        let t = PeriodicTask::new(Q::int(10), Q::int(3));
        let drt = t.to_drt("p").unwrap();
        let rbf = Rbf::compute(&drt, Q::int(60));
        let alpha = t.arrival_curve();
        for i in 0..=60 {
            assert_eq!(rbf.eval(Q::int(i)), alpha.eval(Q::int(i)), "at {i}");
        }
        assert_eq!(long_run_utilization(&drt), q(3, 10));
    }

    #[test]
    fn periodic_with_jitter_curve() {
        let t = PeriodicTask {
            period: Q::int(10),
            wcet: Q::int(2),
            jitter: Q::int(4),
            deadline: None,
        };
        let a = t.arrival_curve();
        // α(Δ) = 2·(⌊(Δ+4)/10⌋ + 1): α(0)=2, α(6)=4, α(16)=6.
        assert_eq!(a.eval(Q::ZERO), Q::int(2));
        assert_eq!(a.eval(q(59, 10)), Q::int(2));
        assert_eq!(a.eval(Q::int(6)), Q::int(4));
        assert_eq!(a.eval(Q::int(15)), Q::int(4));
        assert_eq!(a.eval(Q::int(16)), Q::int(6));
        assert_eq!(a.rate(), q(1, 5));
    }

    #[test]
    fn periodic_jitter_multiple_of_period() {
        let t = PeriodicTask {
            period: Q::int(10),
            wcet: Q::int(2),
            jitter: Q::int(10),
            deadline: None,
        };
        let a = t.arrival_curve();
        // α(Δ) = 2·(⌊(Δ+10)/10⌋ + 1) = 2·(⌊Δ/10⌋ + 2).
        assert_eq!(a.eval(Q::ZERO), Q::int(4));
        assert_eq!(a.eval(Q::int(10)), Q::int(6));
        // Digraph embedding must reject jitter ≥ period.
        assert!(t.to_drt("x").is_err());
    }

    #[test]
    fn sporadic_embedding() {
        let t = SporadicTask::new(Q::int(7), Q::int(2));
        let drt = t.to_drt("s").unwrap();
        let rbf = Rbf::compute(&drt, Q::int(30));
        let a = t.arrival_curve();
        for i in 0..=30 {
            assert_eq!(rbf.eval(Q::int(i)), a.eval(Q::int(i)));
        }
        assert_eq!(drt.deadline(drt.vertex_ids().next().unwrap()), Some(Q::int(7)));
    }

    #[test]
    fn multiframe_ring() {
        // Frames: (5, 10), (1, 10): ring with alternating demand.
        let t = MultiframeTask::new([(Q::int(5), Q::int(10)), (Q::ONE, Q::int(10))]);
        let drt = t.to_drt("gmf").unwrap();
        assert_eq!(drt.num_vertices(), 2);
        assert_eq!(long_run_utilization(&drt), q(6, 20));
        let rbf = Rbf::compute(&drt, Q::int(40));
        // Worst window starts at the heavy frame: 5, then +1 at 10, +5 at 20...
        assert_eq!(rbf.eval(Q::ZERO), Q::int(5));
        assert_eq!(rbf.eval(Q::int(10)), Q::int(6));
        assert_eq!(rbf.eval(Q::int(20)), Q::int(11));
    }

    #[test]
    fn validation_errors() {
        assert!(PeriodicTask::new(Q::ZERO, Q::ONE).validate().is_err());
        assert!(PeriodicTask::new(Q::ONE, Q::ZERO).validate().is_err());
        assert!(SporadicTask::new(Q::ZERO, Q::ONE).to_drt("x").is_err());
        assert!(MultiframeTask::new(std::iter::empty()).to_drt("x").is_err());
        let bad_jitter = PeriodicTask {
            period: Q::ONE,
            wcet: Q::ONE,
            jitter: -Q::ONE,
            deadline: None,
        };
        assert!(bad_jitter.validate().is_err());
    }

    #[test]
    fn recurring_branching_embedding() {
        // Root (wcet 2) branches into a cheap path (1) or expensive (4).
        let tree = RbNode {
            label: "root".into(),
            wcet: Q::int(2),
            deadline: Some(Q::int(10)),
            children: vec![],
        }
        .branch(Q::int(5), RbNode::leaf("cheap", Q::ONE))
        .branch(Q::int(5), RbNode::leaf("expensive", Q::int(4)));
        let task = RecurringBranchingTask {
            root: tree,
            restart_separation: Q::int(10),
        };
        let drt = task.to_drt("rb").unwrap();
        assert_eq!(drt.num_vertices(), 3);
        // Tree edges (2) + leaf restarts (2).
        assert_eq!(drt.num_edges(), 4);
        assert!(drt.has_cycle());
        // Utilization: worst cycle root→expensive→root: (2+4)/(5+10) = 2/5.
        assert_eq!(long_run_utilization(&drt), q(2, 5));
        // rbf picks the expensive branch.
        let rbf = Rbf::compute(&drt, Q::int(20));
        assert_eq!(rbf.eval(Q::ZERO), Q::int(4));
        assert_eq!(rbf.eval(Q::int(5)), Q::int(6)); // root + expensive
        // Deadline preserved on the root.
        let root = drt
            .vertex_ids()
            .find(|&v| drt.vertex(v).label == "root")
            .unwrap();
        assert_eq!(drt.deadline(root), Some(Q::int(10)));
    }

    #[test]
    fn recurring_branching_validation() {
        let task = RecurringBranchingTask {
            root: RbNode::leaf("r", Q::ONE),
            restart_separation: Q::ZERO,
        };
        assert!(task.to_drt("bad").is_err());
        // Single-node tree: self-restart loop.
        let ok = RecurringBranchingTask {
            root: RbNode::leaf("r", Q::ONE),
            restart_separation: Q::int(5),
        }
        .to_drt("ok")
        .unwrap();
        assert_eq!(ok.num_edges(), 1);
        assert_eq!(long_run_utilization(&ok), q(1, 5));
    }

    #[test]
    fn recurring_branching_nested_tree() {
        // root → a → (a1 | a2), root → b.
        let tree = RbNode {
            label: "root".into(),
            wcet: Q::ONE,
            deadline: None,
            children: vec![],
        }
        .branch(
            Q::int(4),
            RbNode::leaf("a", Q::int(2))
                .branch(Q::int(3), RbNode::leaf("a1", Q::ONE))
                .branch(Q::int(3), RbNode::leaf("a2", Q::int(3))),
        )
        .branch(Q::int(4), RbNode::leaf("b", Q::ONE));
        let drt = RecurringBranchingTask {
            root: tree,
            restart_separation: Q::int(8),
        }
        .to_drt("nested")
        .unwrap();
        assert_eq!(drt.num_vertices(), 5);
        // Edges: root→a, root→b, a→a1, a→a2 (4 tree) + 3 leaves→root.
        assert_eq!(drt.num_edges(), 7);
        // Worst cycle: root→a→a2→root = (1+2+3)/(4+3+8) = 6/15 = 2/5.
        assert_eq!(long_run_utilization(&drt), q(2, 5));
    }
}
