//! Concrete release traces of digraph tasks.
//!
//! A [`ReleaseTrace`] is one concrete behaviour: a timed sequence of job
//! releases. Traces are produced by the simulator's trace generators and
//! checked for *legality* against the task graph (each consecutive pair
//! must follow an edge, separated by at least the edge label).

use crate::digraph::{DrtTask, VertexId};
use srtw_minplus::Q;

/// One released job: release time and job type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Release {
    /// Absolute release time.
    pub time: Q,
    /// The released job type.
    pub vertex: VertexId,
}

/// A timed sequence of job releases (non-decreasing times).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReleaseTrace {
    releases: Vec<Release>,
}

impl ReleaseTrace {
    /// An empty trace.
    pub fn new() -> ReleaseTrace {
        ReleaseTrace::default()
    }

    /// Appends a release.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the previous release.
    pub fn push(&mut self, time: Q, vertex: VertexId) {
        if let Some(last) = self.releases.last() {
            assert!(time >= last.time, "releases must be time-ordered");
        }
        self.releases.push(Release { time, vertex });
    }

    /// The releases in time order.
    pub fn releases(&self) -> &[Release] {
        &self.releases
    }

    /// Number of releases.
    pub fn len(&self) -> usize {
        self.releases.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.releases.is_empty()
    }

    /// Checks the trace against the task graph: every consecutive pair must
    /// follow an existing edge with at least its separation elapsed.
    pub fn is_legal(&self, task: &DrtTask) -> bool {
        for w in self.releases.windows(2) {
            let (a, b) = (w[0], w[1]);
            let ok = task
                .out_edges(a.vertex)
                .iter()
                .any(|e| e.to == b.vertex && b.time - a.time >= e.separation);
            if !ok {
                return false;
            }
        }
        true
    }

    /// Total WCET released in the closed window `[from, to]`.
    pub fn work_in(&self, task: &DrtTask, from: Q, to: Q) -> Q {
        self.releases
            .iter()
            .filter(|r| r.time >= from && r.time <= to)
            .map(|r| task.wcet(r.vertex))
            .fold(Q::ZERO, |a, b| a + b)
    }

    /// Total WCET of the whole trace.
    pub fn total_work(&self, task: &DrtTask) -> Q {
        self.releases
            .iter()
            .map(|r| task.wcet(r.vertex))
            .fold(Q::ZERO, |a, b| a + b)
    }

    /// The last release time (`None` if empty).
    pub fn end_time(&self) -> Option<Q> {
        self.releases.last().map(|r| r.time)
    }
}

impl FromIterator<(Q, VertexId)> for ReleaseTrace {
    fn from_iter<T: IntoIterator<Item = (Q, VertexId)>>(iter: T) -> ReleaseTrace {
        let mut t = ReleaseTrace::new();
        for (time, v) in iter {
            t.push(time, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DrtTaskBuilder;

    fn task() -> (DrtTask, VertexId, VertexId) {
        let mut b = DrtTaskBuilder::new("t");
        let a = b.vertex("a", Q::int(2));
        let c = b.vertex("b", Q::int(3));
        b.edge(a, c, Q::int(5));
        b.edge(c, a, Q::int(4));
        (b.build().unwrap(), a, c)
    }

    #[test]
    fn legality() {
        let (t, a, c) = task();
        let good: ReleaseTrace = [(Q::ZERO, a), (Q::int(5), c), (Q::int(9), a)]
            .into_iter()
            .collect();
        assert!(good.is_legal(&t));
        // Too early.
        let early: ReleaseTrace = [(Q::ZERO, a), (Q::int(4), c)].into_iter().collect();
        assert!(!early.is_legal(&t));
        // Missing edge (a -> a).
        let missing: ReleaseTrace = [(Q::ZERO, a), (Q::int(10), a)].into_iter().collect();
        assert!(!missing.is_legal(&t));
        assert!(ReleaseTrace::new().is_legal(&t));
    }

    #[test]
    fn workload_accounting() {
        let (t, a, c) = task();
        let tr: ReleaseTrace = [(Q::ZERO, a), (Q::int(5), c), (Q::int(9), a)]
            .into_iter()
            .collect();
        assert_eq!(tr.total_work(&t), Q::int(7));
        assert_eq!(tr.work_in(&t, Q::ZERO, Q::int(5)), Q::int(5));
        assert_eq!(tr.work_in(&t, Q::int(1), Q::int(8)), Q::int(3));
        assert_eq!(tr.end_time(), Some(Q::int(9)));
        assert_eq!(tr.len(), 3);
        assert!(!tr.is_empty());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn push_out_of_order_panics() {
        let (_, a, _) = task();
        let mut tr = ReleaseTrace::new();
        tr.push(Q::int(5), a);
        tr.push(Q::int(4), a);
    }

    #[test]
    fn trace_work_matches_rbf_bound() {
        // Any legal trace's windowed work is bounded by the rbf.
        let (t, a, c) = task();
        let tr: ReleaseTrace = [
            (Q::ZERO, a),
            (Q::int(5), c),
            (Q::int(9), a),
            (Q::int(14), c),
        ]
        .into_iter()
        .collect();
        assert!(tr.is_legal(&t));
        let rbf = crate::rbf::Rbf::compute(&t, Q::int(20));
        for from in 0..14 {
            for to in from..=14 {
                let w = tr.work_in(&t, Q::int(from), Q::int(to));
                assert!(
                    w <= rbf.eval(Q::int(to - from)),
                    "window [{from},{to}] exceeds rbf"
                );
            }
        }
    }
}
