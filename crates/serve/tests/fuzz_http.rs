//! Seeded fuzz smoke test for the wire-facing HTTP path.
//!
//! Random byte-level mutations of real requests (bit flips, splices,
//! truncations, duplications, and pure noise) are written raw to a live
//! server over TCP. Three invariants:
//!
//! 1. the service never dies — after every case `/healthz` still answers
//!    200 on a fresh connection;
//! 2. whatever comes back is either nothing (a silent close of garbage or
//!    a truncated request) or a well-formed `HTTP/1.1 <status>` response;
//! 3. every 4xx/5xx rejection carries the typed `{"error":{...}}` body —
//!    malformed input is *classified*, never echoed or half-answered.
//!
//! Case counts follow `SRTW_PROP_CASES` (default 64); failures print a
//! `SRTW_PROP_REPLAY=<seed>:<size>` handle for exact reproduction.

use srtw_detrand::prop::forall;
use srtw_detrand::Rng;
use srtw_serve::http::client_roundtrip;
use srtw_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

const SMALL_SYSTEM: &str =
    "task t\nvertex a wcet=2 deadline=9\nedge a a sep=8\nserver fluid rate=1\n";

/// Well-formed requests the mutations start from: the health probe, a
/// real analysis POST (correct `Content-Length`), the stats scrape, and a
/// deliberately armed deadline header.
fn seed_requests() -> Vec<Vec<u8>> {
    let body = SMALL_SYSTEM;
    vec![
        b"GET /healthz HTTP/1.1\r\nHost: fuzz\r\nConnection: close\r\n\r\n".to_vec(),
        format!(
            "POST /analyze HTTP/1.1\r\nHost: fuzz\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .into_bytes(),
        b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
        format!(
            "POST /analyze HTTP/1.1\r\nX-Deadline-Ms: 50\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .into_bytes(),
    ]
}

/// One seeded mutation of a real request (or, occasionally, pure random
/// bytes) — the same five mutation kinds as the parser fuzz suite, but
/// over raw wire bytes, so CRLF framing, header syntax, and the
/// `Content-Length` contract all get broken.
fn mutated(rng: &mut Rng, size: u32) -> Vec<u8> {
    let seeds = seed_requests();
    let mut bytes = seeds[rng.random_range(0usize..seeds.len())].clone();
    let mutations = 1 + (size as usize) / 4;
    for _ in 0..mutations {
        match rng.random_range(0u32..5) {
            // Flip a random byte.
            0 if !bytes.is_empty() => {
                let i = rng.random_range(0usize..bytes.len());
                bytes[i] = rng.next_u64() as u8;
            }
            // Insert a random printable-ish chunk (header soup).
            1 => {
                let i = rng.random_range(0usize..bytes.len() + 1);
                let chunk: Vec<u8> = (0..rng.random_range(1usize..8))
                    .map(|_| (rng.next_u64() % 96 + 32) as u8)
                    .collect();
                bytes.splice(i..i, chunk);
            }
            // Truncate at a random point (half-sent request).
            2 if !bytes.is_empty() => {
                let i = rng.random_range(0usize..bytes.len());
                bytes.truncate(i);
            }
            // Duplicate a random slice (repeated headers, pipelining).
            3 if bytes.len() >= 2 => {
                let a = rng.random_range(0usize..bytes.len() - 1);
                let b = rng.random_range(a + 1..bytes.len());
                let slice = bytes[a..b].to_vec();
                let i = rng.random_range(0usize..bytes.len() + 1);
                bytes.splice(i..i, slice);
            }
            // Replace everything with noise.
            _ => {
                bytes = (0..rng.random_range(0usize..256))
                    .map(|_| rng.next_u64() as u8)
                    .collect();
            }
        }
    }
    bytes
}

/// Writes `bytes` raw, signals end-of-request with a write shutdown, and
/// drains whatever the server sends back until it closes.
fn exchange(addr: &SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let stream = TcpStream::connect(addr).expect("connect to the fuzz server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut stream = stream;
    // A mid-write reset is a legal server reaction to garbage (e.g. the
    // silent-drop zone past the connection cap); treat it as an empty
    // response rather than a failure.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(Shutdown::Write);
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    response
}

/// Response invariant: nothing at all, or `HTTP/1.1 <status>` with a
/// complete head; rejections must carry the typed error body.
fn check_response(sent: &[u8], got: &[u8]) {
    if got.is_empty() {
        return; // Silent close: truncated request or dropped garbage.
    }
    let text = String::from_utf8_lossy(got);
    assert!(
        text.starts_with("HTTP/1.1 "),
        "non-HTTP bytes came back for {sent:?}: {text:?}"
    );
    let status: u16 = text["HTTP/1.1 ".len()..]
        .split(' ')
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable status line: {text:?}"));
    assert!(
        (200..600).contains(&status),
        "status {status} out of range: {text:?}"
    );
    assert!(
        text.contains("\r\n\r\n"),
        "response head never terminated: {text:?}"
    );
    if status >= 400 {
        assert!(
            text.contains("{\"error\":{"),
            "untyped {status} rejection: {text:?}"
        );
    }
}

#[test]
fn mutated_requests_never_kill_the_server_and_rejections_are_typed() {
    let server = Server::spawn(ServeConfig {
        // Tight deadlines so truncated requests cost milliseconds, not
        // the production two seconds, across the whole seeded run.
        header_timeout: Duration::from_millis(200),
        read_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port");
    let addr = server.addr();

    forall("fuzz_http", mutated, |bytes| {
        let response = exchange(&addr, bytes);
        check_response(bytes, &response);
        // Liveness after every case: the mux thread, the workers, and the
        // gate all survived — a fresh connection still gets a clean 200.
        let (status, _, body) =
            client_roundtrip(&addr, "GET", "/healthz", &[], b"").expect("server still alive");
        assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}\n"));
    });

    assert!(server.shutdown().clean());
}
