//! Adversarial stress properties for the budgeted analysis engine.
//!
//! Three claims, each over seeded random adversarial workloads (huge
//! coprime periods, deep chains, dense graphs):
//!
//! 1. the engine never panics — every outcome is `Ok` or a typed `Err`;
//! 2. it terminates promptly once its effort budget trips;
//! 3. degraded bounds are sandwiched: at least the full structural bound
//!    (soundness) and at most the RTC baseline under the same budget
//!    (graceful degradation never does worse than the fraction-0
//!    fallback).
//!
//! Case counts follow `SRTW_PROP_CASES` (default 64); failures print a
//! `SRTW_PROP_REPLAY=<seed>:<size>` handle for exact reproduction.

use srtw::gen::{
    adversarial_coprime, adversarial_deep_chain, adversarial_dense, rescale_utilization,
};
use srtw::prop::forall;
use srtw::{
    earliest_random_walk, q, rtc_delay_with, simulate_fifo, structural_delay,
    structural_delay_with, AnalysisConfig, AnalysisError, Budget, Curve, DrtTask, FaultPlan, Q,
    Rng, ServiceProcess,
};
use std::time::{Duration, Instant};

/// An adversarial task of any shape and a random rate-latency server.
/// Sizes are uncapped except by the harness `size` budget: instances may
/// well be unstable or far too big to analyse exactly — that is the point.
fn any_adversarial(rng: &mut Rng, size: u32) -> (DrtTask, Curve) {
    let seed = rng.next_u64();
    let task = match rng.random_range(0u32..4) {
        0 => adversarial_coprime(1 + size as usize / 4, seed),
        1 => adversarial_deep_chain(2 + size as usize, seed),
        2 => adversarial_dense(2 + size as usize / 8, seed),
        _ => rescale_utilization(&adversarial_dense(2 + size as usize / 8, seed), q(1, 2)),
    };
    let rate = Q::int(rng.random_range(1i128..=4));
    let latency = Q::int(rng.random_range(0i128..=5));
    (task, Curve::rate_latency(rate, latency))
}

/// A *small, stable* adversarial instance on a rate-2 server: exact
/// analysis stays cheap, and the coarse packing rate of every shape stays
/// below the service rate, so degradation always has a sound fallback.
fn small_stable(rng: &mut Rng, size: u32) -> (DrtTask, Curve) {
    let seed = rng.next_u64();
    let task = match rng.random_range(0u32..3) {
        0 => adversarial_coprime(1 + size as usize % 3, seed),
        1 => adversarial_deep_chain(2 + size as usize % 7, seed),
        _ => rescale_utilization(&adversarial_dense(2 + size as usize % 3, seed), q(1, 2)),
    };
    let latency = Q::int(rng.random_range(0i128..=3));
    (task, Curve::rate_latency(Q::int(2), latency))
}

#[test]
fn adversarial_systems_never_panic_and_respect_the_budget() {
    forall("no_panic_within_budget", any_adversarial, |(task, beta)| {
        let budget = Budget::wall_ms(150)
            .with_max_paths(400)
            .with_max_segments(4000);
        let cfg = AnalysisConfig {
            budget,
            ..Default::default()
        };
        let t0 = Instant::now();
        let result = structural_delay_with(task, beta, &cfg);
        // Cooperative metering: the run must wind down promptly after the
        // 150 ms wall budget trips (generous slack for slow machines).
        assert!(
            t0.elapsed() < Duration::from_secs(20),
            "analysis overran its budget: {:?}",
            t0.elapsed()
        );
        match result {
            Ok(a) => {
                // A degraded verdict must say what was degraded.
                assert_eq!(a.quality.is_exact(), a.degradations.is_empty());
                for vb in &a.per_vertex {
                    assert!(vb.bound >= Q::ZERO);
                    assert!(vb.bound <= a.stream_bound);
                }
            }
            // Typed refusals (unstable, saturated, exhausted, overflow)
            // are legitimate outcomes; reaching this arm at all means no
            // panic escaped the engine.
            Err(e) => {
                let _ = e.to_string();
            }
        }
    });
}

#[test]
fn degraded_bounds_are_sandwiched_between_structural_and_rtc() {
    forall("structural_le_degraded_le_rtc", small_stable, |(task, beta)| {
        let exact = structural_delay(task, beta).expect("small stable instance");
        for cap in [0u64, 2, 8, 32] {
            let budget = Budget::default().with_max_paths(cap);
            let cfg = AnalysisConfig {
                budget: budget.clone(),
                ..Default::default()
            };
            let degraded = structural_delay_with(task, beta, &cfg);
            let rtc = rtc_delay_with(task, beta, &budget);
            match (degraded, rtc) {
                (Ok(a), Ok(r)) => {
                    assert!(
                        a.stream_bound >= exact.stream_bound,
                        "cap {cap}: degraded stream bound {} below exact {}",
                        a.stream_bound,
                        exact.stream_bound
                    );
                    for (d, e) in a.per_vertex.iter().zip(exact.per_vertex.iter()) {
                        assert!(
                            d.bound >= e.bound,
                            "cap {cap}: vertex '{}' degraded {} below exact {}",
                            d.label,
                            d.bound,
                            e.bound
                        );
                    }
                    assert!(
                        a.stream_bound <= r.bound,
                        "cap {cap}: degraded stream bound {} above RTC baseline {}",
                        a.stream_bound,
                        r.bound
                    );
                }
                (Err(AnalysisError::BudgetExhausted { .. }), _)
                | (_, Err(AnalysisError::BudgetExhausted { .. })) => {}
                (a, r) => panic!("cap {cap}: unexpected outcome {a:?} / {r:?}"),
            }
        }
    });
}

/// A small stable instance plus a seeded fault plan and a simulation seed.
fn small_stable_with_fault(rng: &mut Rng, size: u32) -> (DrtTask, Curve, u64, u64) {
    let (task, beta) = small_stable(rng, size);
    (task, beta, rng.next_u64(), rng.next_u64())
}

/// The differential oracle under failure: a fault-injected degraded run is
/// replayed through the event simulator, and no observed delay may ever
/// exceed the degraded analytic bound. This checks the *end-to-end*
/// soundness story — whatever a fault does to the engine mid-flight (trip,
/// synthetic overflow, clock jump), the bounds it still reports are real
/// bounds on real schedules.
#[test]
fn fault_injected_degraded_bounds_dominate_simulated_delays() {
    forall(
        "degraded_vs_simulation",
        small_stable_with_fault,
        |(task, beta, fault_seed, sim_seed)| {
            let plan = FaultPlan::seeded(*fault_seed, 64);
            let cfg = AnalysisConfig {
                budget: Budget::default().with_fault(plan),
                ..Default::default()
            };
            match structural_delay_with(task, beta, &cfg) {
                Ok(a) => {
                    // The fluid service at the guaranteed rate dominates the
                    // declared lower curve, so every simulated schedule is
                    // one the analysis covers.
                    let service = ServiceProcess::fluid(beta.rate());
                    let horizon = Q::int(200);
                    for run in 0..4u64 {
                        let trace =
                            earliest_random_walk(task, horizon, None, sim_seed.wrapping_mul(31) + run);
                        let out = simulate_fifo(
                            std::slice::from_ref(task),
                            std::slice::from_ref(&trace),
                            &service,
                        );
                        for v in task.vertex_ids() {
                            let observed = out.max_delay_of(0, v);
                            assert!(
                                observed <= a.bound_of(v),
                                "fault {plan:?}: observed delay {observed} exceeds \
                                 degraded bound {} for {v} (quality {:?})",
                                a.bound_of(v),
                                a.quality
                            );
                        }
                    }
                }
                // An injected overflow surfaces as the typed arithmetic
                // error; a trip can leave no sound coarse finish on some
                // instances. Both are legitimate refusals — never unsound
                // bounds, never panics.
                Err(AnalysisError::Arithmetic(_))
                | Err(AnalysisError::BudgetExhausted { .. }) => {}
                Err(e) => panic!("fault {plan:?}: unexpected error {e}"),
            }
        },
    );
}

#[test]
fn rtc_degradation_is_sound_and_flagged() {
    forall("rtc_degrades_soundly", small_stable, |(task, beta)| {
        let exact = rtc_delay_with(task, beta, &Budget::UNLIMITED).expect("small stable instance");
        assert!(exact.quality.is_exact());
        for cap in [0u64, 1, 8] {
            match rtc_delay_with(task, beta, &Budget::default().with_max_paths(cap)) {
                Ok(r) => {
                    assert!(
                        r.bound >= exact.bound,
                        "cap {cap}: degraded RTC bound {} below exact {}",
                        r.bound,
                        exact.bound
                    );
                }
                Err(AnalysisError::BudgetExhausted { .. }) => {}
                Err(e) => panic!("cap {cap}: unexpected error {e}"),
            }
        }
    });
}
