//! Abstract-path exploration with dominance pruning.
//!
//! The structural analyses of this workspace all reduce to enumerating the
//! *abstract paths* of a [`DrtTask`]: walks `v₁ → … → vₖ` abstracted to
//! demand pairs `(span, work)` where `span` is the minimum time between the
//! first and last release and `work` the total WCET. Two paths ending at
//! the same vertex compare by Pareto dominance — `(span′ ≤ span, work′ ≥
//! work)` dominates — and dominance is preserved under extension, so
//! dominated paths can be pruned without affecting any maximisation of the
//! form `max f(work) − g(span)` with monotone `f`, `g`. This is the
//! classical demand-tuple technique of the DRT analysis literature and the
//! engine behind both the request-bound function and the structural delay
//! analysis.

use crate::digraph::{DrtTask, VertexId};
use srtw_minplus::{BudgetKind, BudgetMeter, Q};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One non-dominated abstract path, ending at [`PathNode::vertex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathNode {
    /// The vertex whose job is released last on this path.
    pub vertex: VertexId,
    /// Minimum time between the path's first and last release.
    pub span: Q,
    /// Total WCET of all jobs on the path (including the last).
    pub work: Q,
    /// Number of jobs on the path.
    pub len: usize,
    /// Arena index of the predecessor node.
    pub(crate) parent: Option<usize>,
}

/// Configuration of a path exploration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Only paths with `span ≤ horizon` are enumerated.
    pub horizon: Q,
    /// Optional bound on the number of jobs per path (`None` = unbounded).
    /// Used by the abstraction-depth ablation.
    pub max_len: Option<usize>,
    /// Enable Pareto dominance pruning (disable only to measure its effect).
    pub prune: bool,
    /// Safety valve: stop retaining nodes beyond this count (default one
    /// million). Reaching it interrupts the exploration gracefully — the
    /// result reports [`Exploration::interrupted`] and a correspondingly
    /// reduced [`Exploration::complete_span`] — exactly like tripping an
    /// explored-paths budget.
    pub node_limit: usize,
}

impl ExploreConfig {
    /// Standard configuration: given horizon, unbounded length, pruning on.
    pub fn new(horizon: Q) -> ExploreConfig {
        ExploreConfig {
            horizon,
            max_len: None,
            prune: true,
            node_limit: 1_000_000,
        }
    }

    /// Limits the number of jobs per path.
    #[must_use]
    pub fn with_max_len(mut self, max_len: usize) -> ExploreConfig {
        self.max_len = Some(max_len);
        self
    }

    /// Disables dominance pruning.
    #[must_use]
    pub fn without_pruning(mut self) -> ExploreConfig {
        self.prune = false;
        self
    }
}

/// Result of a path exploration: the arena of retained (non-dominated)
/// nodes plus bookkeeping counters.
#[derive(Debug, Clone)]
pub struct Exploration {
    nodes: Vec<PathNode>,
    /// Number of candidate nodes generated (before pruning).
    pub generated: usize,
    /// Number of candidates discarded by dominance.
    pub pruned: usize,
    /// The horizon the exploration ran to.
    pub horizon: Q,
    /// Whether path length was capped (some continuations not explored).
    pub truncated_by_len: bool,
    /// Spans **strictly below** this value are completely enumerated even
    /// if the exploration was interrupted. Candidates pop in ascending
    /// span order, so an interruption at span `s` leaves every span `< s`
    /// final — the basis of the sound horizon-truncation fallback. Equals
    /// `horizon` (and covers it inclusively) for uninterrupted runs.
    pub complete_span: Q,
    /// `Some(kind)` when a budget dimension (or the node limit, reported
    /// as [`BudgetKind::Paths`]) stopped the exploration early.
    pub interrupted: Option<BudgetKind>,
}

impl Exploration {
    /// The retained path nodes, in non-decreasing span order.
    pub fn nodes(&self) -> &[PathNode] {
        &self.nodes
    }

    /// Reconstructs the vertex sequence of the path ending at `node_index`.
    pub fn path_of(&self, node_index: usize) -> Vec<VertexId> {
        let mut rev = Vec::new();
        let mut cur = Some(node_index);
        while let Some(i) = cur {
            rev.push(self.nodes[i].vertex);
            cur = self.nodes[i].parent;
        }
        rev.reverse();
        rev
    }

    /// Finds the arena index of a node (identity by value triple).
    pub fn index_of(&self, node: &PathNode) -> Option<usize> {
        self.nodes.iter().position(|n| n == node)
    }
}

/// Heap entry ordered by ascending span (BinaryHeap is a max-heap, so the
/// ordering is reversed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Candidate {
    span: Q,
    work: Q,
    vertex: VertexId,
    len: usize,
    parent: Option<usize>,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Candidate) -> Ordering {
        // Reverse span; tie-break on descending work so the strongest
        // tuple at a span is installed first (maximising pruning).
        other
            .span
            .cmp(&self.span)
            .then(self.work.cmp(&other.work))
            .then(self.vertex.cmp(&other.vertex).reverse())
            .then(self.len.cmp(&other.len).reverse())
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Candidate) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-vertex Pareto frontier: entries `(span, work, node_index)` strictly
/// increasing in both `span` and `work`.
#[derive(Debug, Default, Clone)]
struct Frontier {
    entries: Vec<(Q, Q, usize)>,
}

impl Frontier {
    /// Is `(span, work)` dominated by an existing entry?
    fn dominated(&self, span: Q, work: Q) -> bool {
        // Last entry with span' ≤ span carries the best work at or before
        // `span` (entries are increasing in both coordinates).
        match self.entries.iter().rev().find(|e| e.0 <= span) {
            Some(&(_, w, _)) => w >= work,
            None => false,
        }
    }

    /// Inserts a non-dominated `(span, work, idx)` and evicts entries it
    /// dominates.
    fn insert(&mut self, span: Q, work: Q, idx: usize) {
        let pos = self.entries.partition_point(|e| e.0 < span);
        // Evict subsequent entries with work ≤ work (they have span ≥ span).
        let mut end = pos;
        while end < self.entries.len() && self.entries[end].1 <= work {
            end += 1;
        }
        self.entries.splice(pos..end, [(span, work, idx)]);
    }
}

/// Explores all non-dominated abstract paths of `task` within the
/// configuration's horizon.
///
/// # Examples
///
/// ```
/// use srtw_workload::{DrtTaskBuilder, explore, ExploreConfig};
/// use srtw_minplus::Q;
///
/// let mut b = DrtTaskBuilder::new("loop");
/// let v = b.vertex("v", Q::int(2));
/// b.edge(v, v, Q::int(5));
/// let task = b.build().unwrap();
///
/// let ex = explore(&task, &ExploreConfig::new(Q::int(12)));
/// // Paths: v (span 0), v→v (span 5), v→v→v (span 10).
/// assert_eq!(ex.nodes().len(), 3);
/// assert_eq!(ex.nodes()[2].work, Q::int(6));
/// ```
pub fn explore(task: &DrtTask, cfg: &ExploreConfig) -> Exploration {
    explore_metered(task, cfg, &BudgetMeter::unlimited())
}

/// Budgeted [`explore`]: ticks the explored-paths budget once per heap pop
/// and stops at a **clean prefix** when any dimension (or the
/// [`ExploreConfig::node_limit`]) trips.
///
/// Because candidates pop in ascending span order (successors strictly
/// increase the span — separations are positive), interruption at a
/// candidate of span `s` leaves every abstract path of span `< s` fully
/// enumerated. The result's [`Exploration::complete_span`] records that
/// exclusive frontier; retained nodes at span `≥ s` are genuine paths too
/// (sound for maximisation) but possibly not exhaustive.
pub fn explore_metered(task: &DrtTask, cfg: &ExploreConfig, meter: &BudgetMeter) -> Exploration {
    let mut nodes: Vec<PathNode> = Vec::new();
    let mut frontiers: Vec<Frontier> = vec![Frontier::default(); task.num_vertices()];
    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
    let mut generated = 0usize;
    let mut pruned = 0usize;
    let mut truncated_by_len = false;
    let mut complete_span = cfg.horizon;
    let mut interrupted: Option<BudgetKind> = None;

    for v in task.vertex_ids() {
        generated += 1;
        heap.push(Candidate {
            span: Q::ZERO,
            work: task.wcet(v),
            vertex: v,
            len: 1,
            parent: None,
        });
    }

    while let Some(c) = heap.pop() {
        if !meter.tick_path() {
            interrupted = meter.tripped().or(Some(BudgetKind::Paths));
            complete_span = c.span;
            break;
        }
        if cfg.prune && frontiers[c.vertex.index()].dominated(c.span, c.work) {
            pruned += 1;
            continue;
        }
        if !cfg.prune {
            // Even without pruning, drop exact duplicates to stay finite.
            if nodes
                .iter()
                .any(|n| n.vertex == c.vertex && n.span == c.span && n.work == c.work && n.len == c.len)
            {
                pruned += 1;
                continue;
            }
        }
        let idx = nodes.len();
        if idx >= cfg.node_limit {
            interrupted = Some(BudgetKind::Paths);
            complete_span = c.span;
            break;
        }
        nodes.push(PathNode {
            vertex: c.vertex,
            span: c.span,
            work: c.work,
            len: c.len,
            parent: c.parent,
        });
        if cfg.prune {
            frontiers[c.vertex.index()].insert(c.span, c.work, idx);
        }
        if let Some(ml) = cfg.max_len {
            if c.len >= ml {
                if !task.out_edges(c.vertex).is_empty() {
                    truncated_by_len = true;
                }
                continue;
            }
        }
        for e in task.out_edges(c.vertex) {
            let span = c.span + e.separation;
            if span > cfg.horizon {
                continue;
            }
            generated += 1;
            heap.push(Candidate {
                span,
                work: c.work + task.wcet(e.to),
                vertex: e.to,
                len: c.len + 1,
                parent: Some(idx),
            });
        }
    }

    Exploration {
        nodes,
        generated,
        pruned,
        horizon: cfg.horizon,
        truncated_by_len,
        complete_span,
        interrupted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DrtTaskBuilder;

    fn diamond() -> DrtTask {
        // a -> b (sep 3, e=1), a -> c (sep 4, e=5), b -> d, c -> d
        let mut b = DrtTaskBuilder::new("diamond");
        let a = b.vertex("a", Q::int(2));
        let bb = b.vertex("b", Q::ONE);
        let c = b.vertex("c", Q::int(5));
        let d = b.vertex("d", Q::ONE);
        b.edge(a, bb, Q::int(3));
        b.edge(a, c, Q::int(4));
        b.edge(bb, d, Q::int(3));
        b.edge(c, d, Q::int(2));
        b.build().unwrap()
    }

    #[test]
    fn explore_single_loop() {
        let mut b = DrtTaskBuilder::new("loop");
        let v = b.vertex("v", Q::int(2));
        b.edge(v, v, Q::int(5));
        let task = b.build().unwrap();
        let ex = explore(&task, &ExploreConfig::new(Q::int(20)));
        let spans: Vec<Q> = ex.nodes().iter().map(|n| n.span).collect();
        assert_eq!(
            spans,
            vec![Q::ZERO, Q::int(5), Q::int(10), Q::int(15), Q::int(20)]
        );
        let works: Vec<Q> = ex.nodes().iter().map(|n| n.work).collect();
        assert_eq!(
            works,
            vec![Q::int(2), Q::int(4), Q::int(6), Q::int(8), Q::int(10)]
        );
    }

    #[test]
    fn explore_diamond_prunes_weak_branch() {
        let task = diamond();
        let ex = explore(&task, &ExploreConfig::new(Q::int(100)));
        // Path a→c→d (span 6, work 8) dominates a→b→d (span 6, work 4):
        // only one node at vertex d with span 6 must remain.
        let d_nodes: Vec<&PathNode> = ex
            .nodes()
            .iter()
            .filter(|n| n.vertex.index() == 3 && n.span == Q::int(6))
            .collect();
        assert_eq!(d_nodes.len(), 1);
        assert_eq!(d_nodes[0].work, Q::int(8));
        assert!(ex.pruned > 0);
    }

    #[test]
    fn witness_reconstruction() {
        let task = diamond();
        let ex = explore(&task, &ExploreConfig::new(Q::int(100)));
        let best_d = ex
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.vertex.index() == 3)
            .max_by_key(|(_, n)| n.work)
            .map(|(i, _)| i)
            .unwrap();
        let path = ex.path_of(best_d);
        let labels: Vec<&str> = path
            .iter()
            .map(|&v| task.vertex(v).label.as_str())
            .collect();
        assert_eq!(labels, vec!["a", "c", "d"]);
    }

    #[test]
    fn max_len_truncation_flag() {
        let mut b = DrtTaskBuilder::new("loop");
        let v = b.vertex("v", Q::ONE);
        b.edge(v, v, Q::ONE);
        let task = b.build().unwrap();
        let ex = explore(&task, &ExploreConfig::new(Q::int(50)).with_max_len(3));
        assert!(ex.truncated_by_len);
        assert!(ex.nodes().iter().all(|n| n.len <= 3));
        let full = explore(&task, &ExploreConfig::new(Q::int(50)));
        assert!(!full.truncated_by_len);
    }

    #[test]
    fn pruning_preserves_rbf_envelope() {
        // With and without pruning, the attainable (span, work) envelope
        // must agree: for every unpruned node there is a pruned-run node
        // with span ≤ and work ≥.
        let task = diamond();
        let pruned = explore(&task, &ExploreConfig::new(Q::int(30)));
        let raw = explore(&task, &ExploreConfig::new(Q::int(30)).without_pruning());
        assert!(raw.nodes().len() >= pruned.nodes().len());
        for n in raw.nodes() {
            assert!(
                pruned
                    .nodes()
                    .iter()
                    .any(|m| m.vertex == n.vertex && m.span <= n.span && m.work >= n.work),
                "node {n:?} not covered"
            );
        }
    }

    #[test]
    fn metered_explore_stops_at_clean_prefix() {
        use srtw_minplus::Budget;
        let mut b = DrtTaskBuilder::new("loop");
        let v = b.vertex("v", Q::int(2));
        b.edge(v, v, Q::int(5));
        let task = b.build().unwrap();
        let cfg = ExploreConfig::new(Q::int(1000));
        let meter = BudgetMeter::new(&Budget::default().with_max_paths(10));
        let ex = explore_metered(&task, &cfg, &meter);
        assert_eq!(ex.interrupted, Some(BudgetKind::Paths));
        assert!(ex.complete_span < Q::int(1000));
        // Exclusive completeness: compare against an unmetered run capped
        // at the reported complete span.
        let full = explore(&task, &ExploreConfig::new(Q::int(1000)));
        let expect: Vec<&PathNode> = full
            .nodes()
            .iter()
            .filter(|n| n.span < ex.complete_span)
            .collect();
        for want in &expect {
            assert!(
                ex.nodes().iter().any(|n| n.span == want.span
                    && n.work == want.work
                    && n.vertex == want.vertex),
                "missing complete-prefix node {want:?}"
            );
        }
        // An unmetered run reports full completeness.
        assert_eq!(full.interrupted, None);
        assert_eq!(full.complete_span, Q::int(1000));
    }

    #[test]
    fn node_limit_interrupts_instead_of_panicking() {
        let mut b = DrtTaskBuilder::new("loop");
        let v = b.vertex("v", Q::ONE);
        b.edge(v, v, Q::ONE);
        let task = b.build().unwrap();
        let mut cfg = ExploreConfig::new(Q::int(10_000));
        cfg.node_limit = 5;
        let ex = explore(&task, &cfg);
        assert_eq!(ex.interrupted, Some(BudgetKind::Paths));
        assert_eq!(ex.nodes().len(), 5);
        assert!(ex.complete_span <= Q::int(5));
    }

    #[test]
    fn frontier_insert_and_dominate() {
        let mut f = Frontier::default();
        f.insert(Q::ZERO, Q::ONE, 0);
        assert!(f.dominated(Q::ONE, Q::ONE));
        assert!(!f.dominated(Q::ONE, Q::TWO));
        f.insert(Q::ONE, Q::int(3), 1);
        // New stronger entry at same span evicts weaker-later ones.
        f.insert(Q::ONE, Q::int(5), 2);
        assert!(f.dominated(Q::int(2), Q::int(5)));
        assert_eq!(f.entries.len(), 2);
    }
}
