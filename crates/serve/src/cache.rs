//! Content-addressed result caching and cross-request rbf promotion.
//!
//! Two stores back the service's incremental paths:
//!
//! * [`ResultCache`] — a sharded, byte-budgeted, LRU-evicting map from
//!   `(canonical system hash, deadline class, threads)` to the rendered
//!   `POST /analyze` response body plus the structured [`FifoReport`]
//!   behind it. Every hit **verifies** the stored canonical form and the
//!   presentation digest before replaying — hash collisions and
//!   canonicalization incompleteness degrade to misses, never to wrong
//!   bodies (see `srtw_workload::canon` for the soundness argument).
//!   Only exact (non-degraded), fault-free results are stored: an exact
//!   report is a pure function of the parsed system, so a replayed body
//!   is byte-identical to what a cold run would produce — modulo
//!   `runtime_secs`, the document's only nondeterministic field.
//! * [`MemoStore`] — promoted exact rbfs keyed by *per-task* canonical
//!   hash and horizon, used to pre-seed a request's
//!   [`RbfMemo`]. Because only exact rbfs are promoted (pure functions
//!   of `(task, horizon)`), a warm memo changes how fast an unmetered
//!   analysis runs, never what it returns — and it keeps paying off
//!   across *renamed or re-ordered* variants of a system, where the
//!   rendered-body cache must recompute.
//!
//! Replicas under `--replicas N` are shared-nothing: each has its own
//! independent stores (documented in the README); the parent aggregates
//! the per-replica counters in `/stats`.

use crate::report::FifoReport;
use srtw_minplus::Q;
use srtw_workload::{CanonicalForm, Rbf, RbfMemo};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Shard count for the response cache (fixed power of two). The persist
/// layer mirrors this: one spill file per shard, addressed by the same
/// `canon & (SHARDS - 1)` index, so a shard's spill file replays into the
/// same shard it was written from.
pub(crate) const SHARDS: usize = 8;

/// Most promoted `(horizon, rbf)` entries kept per canonical task hash —
/// mirrors the per-request memo's way count.
const MEMO_WAYS: usize = 8;

/// Most task groups the [`MemoStore`] retains before evicting the least
/// recently used.
const MEMO_TASK_CAP: usize = 1024;

/// The lookup key of one cached analysis: canonical content hash plus
/// the budget class the result was computed under.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    /// 128-bit canonical hash of the parsed system.
    pub canon: u128,
    /// The request's deadline class (`X-Deadline-Ms` or the configured
    /// default) — a budget is part of what the answer *means*.
    pub deadline_ms: Option<u64>,
    /// Exploration threads (bit-identical either way, but part of the
    /// configured analysis class).
    pub threads: usize,
}

struct Entry {
    /// Full canonical form, compared on every hit (collision safety).
    form: CanonicalForm,
    /// Presentation digest: task/vertex names and order. The rendered
    /// body carries names, so replaying it verbatim additionally
    /// requires the presentation to match.
    presentation: u64,
    /// The rendered 200 body, exactly as first sent.
    body: String,
    /// The structured report behind the body (delta re-uses per-stream
    /// analyses from it). `None` for entries warm-loaded from a spill
    /// file: the body replays verbatim, but delta splicing falls back to
    /// a full recompute until a fresh analysis refills the report.
    report: Option<FifoReport>,
    /// Approximate retained bytes.
    bytes: usize,
    /// LRU clock value of the last touch.
    last_used: u64,
}

/// What a [`ResultCache::lookup`] found.
pub(crate) struct CacheHit {
    /// The stored body (byte-identical to the original response).
    pub body: String,
    /// The structured report (for delta stream reuse); `None` on entries
    /// warm-loaded from disk.
    pub report: Option<FifoReport>,
}

/// Sharded, byte-budgeted response cache (see module docs).
#[derive(Default)]
pub(crate) struct ResultCache {
    shards: Vec<Mutex<HashMap<CacheKey, Entry>>>,
    /// Byte budget per shard (total budget / shard count).
    shard_budget: usize,
    clock: AtomicU64,
    bytes: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("bytes", &self.bytes.load(Ordering::Relaxed))
            .finish()
    }
}

/// Estimates the retained size of one entry. The body and form dominate;
/// the structured report (absent on warm-loaded entries) is approximated
/// from its vertex counts.
fn entry_bytes(form: &CanonicalForm, body: &str, report: Option<&FifoReport>) -> usize {
    let report_bytes: usize = report
        .map(|r| {
            r.per
                .iter()
                .map(|a| 256 + a.per_vertex.len() * 160 + a.degradations.len() * 96)
                .sum()
        })
        .unwrap_or(0);
    body.len() + form.approx_bytes() + report_bytes + 128
}

impl ResultCache {
    /// A cache spreading `byte_budget` bytes over its shards.
    /// `byte_budget == 0` disables caching entirely.
    pub fn new(byte_budget: usize) -> ResultCache {
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_budget: byte_budget / SHARDS,
            clock: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Which shard a key lives in — also the spill-file index the persist
    /// layer uses for this key.
    pub fn shard_index(key: &CacheKey) -> usize {
        (key.canon as usize) & (SHARDS - 1)
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, Entry>> {
        &self.shards[ResultCache::shard_index(key)]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// `true` when the cache can never store anything.
    pub fn disabled(&self) -> bool {
        self.shard_budget == 0
    }

    /// Looks up a stored result, verifying both the canonical form and
    /// the presentation digest. A verified hit refreshes LRU recency.
    pub fn lookup(
        &self,
        key: &CacheKey,
        form: &CanonicalForm,
        presentation: u64,
    ) -> Option<CacheHit> {
        if self.disabled() {
            return None;
        }
        let mut shard = self.shard(key).lock().unwrap();
        let entry = shard.get_mut(key)?;
        if entry.form != *form || entry.presentation != presentation {
            return None;
        }
        entry.last_used = self.tick();
        Some(CacheHit {
            body: entry.body.clone(),
            report: entry.report.clone(),
        })
    }

    /// Stores a result, evicting least-recently-used entries from the
    /// key's shard until the entry fits its byte budget. An entry larger
    /// than the whole shard budget is not stored at all. Returns `true`
    /// when the entry was actually stored — the persist layer only spills
    /// entries the in-memory cache accepted. `report` is `None` for
    /// entries warm-loaded from disk.
    pub fn insert(
        &self,
        key: CacheKey,
        form: CanonicalForm,
        presentation: u64,
        body: String,
        report: Option<FifoReport>,
    ) -> bool {
        if self.disabled() {
            return false;
        }
        let bytes = entry_bytes(&form, &body, report.as_ref());
        if bytes > self.shard_budget {
            return false;
        }
        let mut shard = self.shard(&key).lock().unwrap();
        if let Some(old) = shard.remove(&key) {
            self.bytes.fetch_sub(old.bytes as u64, Ordering::Relaxed);
        }
        let mut used: usize = shard.values().map(|e| e.bytes).sum();
        while used + bytes > self.shard_budget {
            let victim = shard
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("over budget implies non-empty shard");
            let evicted = shard.remove(&victim).expect("victim exists");
            used -= evicted.bytes;
            self.bytes
                .fetch_sub(evicted.bytes as u64, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        shard.insert(
            key,
            Entry {
                form,
                presentation,
                body,
                report,
                bytes,
                last_used: self.tick(),
            },
        );
        true
    }

    /// Approximate retained bytes across all shards (a `/stats` gauge).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Entries evicted under the byte budget since startup.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

struct MemoGroup {
    entries: Vec<(Q, Rbf)>,
    last_used: u64,
}

/// Promoted cross-request store of exact rbfs (see module docs).
#[derive(Default)]
pub(crate) struct MemoStore {
    map: Mutex<HashMap<u128, MemoGroup>>,
    clock: AtomicU64,
}

impl std::fmt::Debug for MemoStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoStore").finish()
    }
}

impl MemoStore {
    /// An empty store.
    pub fn new() -> MemoStore {
        MemoStore::default()
    }

    /// A fresh per-request memo for `task_hashes[i] = canonical hash of
    /// task i`, pre-seeded with every promoted rbf known for those tasks.
    pub fn warm(&self, task_hashes: &[u128]) -> RbfMemo {
        let memo = RbfMemo::new(task_hashes.len());
        let mut map = self.map.lock().unwrap();
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        for (i, h) in task_hashes.iter().enumerate() {
            if let Some(group) = map.get_mut(h) {
                group.last_used = now;
                for (horizon, rbf) in &group.entries {
                    memo.seed(i, *horizon, rbf.clone());
                }
            }
        }
        memo
    }

    /// Promotes the exact rbfs a finished request left in its memo back
    /// into the store, bounded per task and across tasks (LRU on task
    /// groups).
    pub fn promote(&self, task_hashes: &[u128], memo: &RbfMemo) {
        let snapshot = memo.snapshot();
        if snapshot.is_empty() {
            return;
        }
        let mut map = self.map.lock().unwrap();
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        for (index, horizon, rbf) in snapshot {
            let Some(&hash) = task_hashes.get(index) else {
                continue;
            };
            let group = map.entry(hash).or_insert_with(|| MemoGroup {
                entries: Vec::new(),
                last_used: now,
            });
            group.last_used = now;
            if group.entries.len() < MEMO_WAYS
                && !group.entries.iter().any(|(h, _)| *h == horizon)
            {
                group.entries.push((horizon, rbf));
            }
        }
        while map.len() > MEMO_TASK_CAP {
            let victim = map
                .iter()
                .min_by_key(|(_, g)| g.last_used)
                .map(|(k, _)| *k)
                .expect("over cap implies non-empty");
            map.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtw_core::{fifo_rtc, fifo_structural, AnalysisConfig};
    use srtw_minplus::{Curve, Q};
    use srtw_workload::{canonical_task_form, combine_forms, DrtTaskBuilder};

    fn tiny_report() -> (CanonicalForm, FifoReport) {
        let mut b = DrtTaskBuilder::new("t");
        let v = b.vertex("a", Q::int(2));
        b.edge(v, v, Q::int(8));
        let task = b.build().unwrap();
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        let per = fifo_structural(
            std::slice::from_ref(&task),
            &beta,
            &AnalysisConfig::default(),
        )
        .unwrap();
        let rtc = fifo_rtc(std::slice::from_ref(&task), &beta).unwrap();
        let form = combine_forms(vec![canonical_task_form(&task)], &[]);
        (form, FifoReport { per, rtc })
    }

    fn key(canon: u128) -> CacheKey {
        CacheKey {
            canon,
            deadline_ms: None,
            threads: 1,
        }
    }

    #[test]
    fn hit_requires_form_and_presentation_match() {
        let (form, report) = tiny_report();
        let cache = ResultCache::new(1 << 20);
        let k = key(form.hash());
        assert!(cache.insert(k.clone(), form.clone(), 7, "body\n".into(), Some(report)));
        assert!(cache.lookup(&k, &form, 7).is_some());
        // Same key, different presentation: a miss, not a wrong body.
        assert!(cache.lookup(&k, &form, 8).is_none());
        // Different form under the same key (a collision): a miss.
        let other = combine_forms(vec![], &[1]);
        assert!(cache.lookup(&k, &other, 7).is_none());
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let (form, report) = tiny_report();
        // Budget sized so a shard holds roughly one entry.
        let one = entry_bytes(&form, "b", Some(&report));
        let cache = ResultCache::new(one * SHARDS + SHARDS);
        let mut keys = Vec::new();
        for i in 0..64u128 {
            let k = key(i);
            cache.insert(k.clone(), form.clone(), 1, "b".into(), Some(report.clone()));
            keys.push(k);
        }
        assert!(cache.evictions() > 0);
        assert!(cache.bytes() <= (one as u64 + 1) * SHARDS as u64 + SHARDS as u64);
        // The most recent insert in its shard must have survived.
        let last = keys.last().unwrap();
        assert!(cache.lookup(last, &form, 1).is_some());
    }

    #[test]
    fn zero_budget_disables_the_cache() {
        let (form, report) = tiny_report();
        let cache = ResultCache::new(0);
        let k = key(form.hash());
        assert!(!cache.insert(k.clone(), form.clone(), 1, "b".into(), Some(report)));
        assert!(cache.lookup(&k, &form, 1).is_none());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn memo_store_round_trips_exact_rbfs() {
        let mut b = DrtTaskBuilder::new("t");
        let v = b.vertex("a", Q::int(2));
        b.edge(v, v, Q::int(8));
        let task = b.build().unwrap();
        let hash = canonical_task_form(&task).hash();

        let store = MemoStore::new();
        let memo = RbfMemo::new(1);
        let _ = memo.get_or_compute(
            0,
            &task,
            Q::int(40),
            &srtw_minplus::BudgetMeter::unlimited(),
            1,
        );
        assert_eq!(memo.computes(), 1);
        store.promote(&[hash], &memo);

        let warm = store.warm(&[hash]);
        let _ = warm.get_or_compute(
            0,
            &task,
            Q::int(40),
            &srtw_minplus::BudgetMeter::unlimited(),
            1,
        );
        assert_eq!(warm.hits(), 1, "promoted rbf must be a warm hit");
        assert_eq!(warm.computes(), 0);
    }
}
