//! Pointwise curve operations: minimum, maximum, addition, and the clamped
//! monotone difference used for leftover service computation.
//!
//! All operations are **exact**: the operands' tails (ultimately affine or
//! ultimately periodic) are analysed symbolically, a sufficient common
//! horizon is materialized, and the result is reassembled with a correct
//! tail descriptor. Unit tests cross-check every operation against pointwise
//! evaluation on dense rational grids.

use crate::curve::{Curve, Piece, Tail};
use crate::error::{ArithmeticError, CurveError};
use crate::meter::BudgetMeter;
use crate::ratio::Q;

/// The overflow error value, shared by the checked helpers below.
const OVF: CurveError = CurveError::Arithmetic(ArithmeticError::Overflow);

pub(crate) fn ck_add(a: Q, b: Q) -> Result<Q, CurveError> {
    a.checked_add(b).ok_or(OVF)
}

pub(crate) fn ck_mul(a: Q, b: Q) -> Result<Q, CurveError> {
    a.checked_mul(b).ok_or(OVF)
}

/// Which pointwise operation to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PointOp {
    Add,
    Min,
    Max,
}

/// Symbolic description of a curve's behaviour beyond its tail start:
/// `f(t) = base + rate·(t − s) + dev(t)` with `dev(t) ∈ [dev_min, dev_max]`
/// (and `dev` periodic for periodic tails, identically zero for affine ones).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TailInfo {
    /// Tail start.
    pub(crate) s: Q,
    /// Long-run rate.
    pub(crate) rate: Q,
    /// Period of the deviation (`None` for affine tails).
    pub(crate) period: Option<Q>,
    /// `f(s)`.
    pub(crate) base: Q,
    /// Lower bound on the deviation from the linear reference.
    pub(crate) dev_min: Q,
    /// Upper bound on the deviation from the linear reference.
    pub(crate) dev_max: Q,
}

impl TailInfo {
    pub(crate) fn of(c: &Curve) -> TailInfo {
        let s = c.tail_start();
        let rate = c.rate();
        let base = c.eval(s);
        match c.tail() {
            Tail::Affine => TailInfo {
                s,
                rate,
                period: None,
                base,
                dev_min: Q::ZERO,
                dev_max: Q::ZERO,
            },
            Tail::Periodic {
                pattern_start,
                period,
                ..
            } => {
                let pieces = c.pieces();
                let mut dev_min = Q::ZERO;
                let mut dev_max = Q::ZERO;
                let reference = |t: Q| base + rate * (t - s);
                for i in pattern_start..pieces.len() {
                    let p = pieces[i];
                    let end = if i + 1 < pieces.len() {
                        pieces[i + 1].start
                    } else {
                        s + period
                    };
                    let d_start = p.value - reference(p.start);
                    let d_end = p.eval(end) - reference(end);
                    dev_min = dev_min.min(d_start).min(d_end);
                    dev_max = dev_max.max(d_start).max(d_end);
                }
                TailInfo {
                    s,
                    rate,
                    period: Some(period),
                    base,
                    dev_min,
                    dev_max,
                }
            }
        }
    }

    /// A linear function that upper-bounds `f` for all `t ≥ s`:
    /// returns `(offset, rate)` with `f(t) ≤ offset + rate·t`.
    pub(crate) fn upper_line(&self) -> (Q, Q) {
        (self.base - self.rate * self.s + self.dev_max, self.rate)
    }

    /// A linear function that lower-bounds `f` for all `t ≥ s`.
    pub(crate) fn lower_line(&self) -> (Q, Q) {
        (self.base - self.rate * self.s + self.dev_min, self.rate)
    }
}

/// Combines two curves pointwise on `[0, upto)`, splitting at crossings for
/// min/max. `anchors` are extra mandatory breakpoints (e.g. the future
/// pattern start). Both operands must be affine within every elementary
/// interval of the produced grid, which holds because the grid contains all
/// piece starts below `upto`.
fn combine_pieces(
    a: &Curve,
    b: &Curve,
    upto: Q,
    anchors: &[Q],
    op: PointOp,
    meter: &BudgetMeter,
) -> Result<Vec<Piece>, CurveError> {
    let pa = a.try_pieces_upto(upto, meter)?;
    let pb = b.try_pieces_upto(upto, meter)?;
    let mut ev: Vec<Q> = pa
        .iter()
        .chain(pb.iter())
        .map(|p| p.start)
        .filter(|s| *s < upto)
        .chain(anchors.iter().copied().filter(|s| *s < upto))
        .collect();
    ev.push(Q::ZERO);
    ev.sort();
    ev.dedup();

    let slope_in = |pieces: &[Piece], t: Q| -> (Q, Q) {
        // (value, slope) of the piece governing `t`.
        let idx = match pieces.binary_search_by(|p| p.start.cmp(&t)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        (pieces[idx].eval(t), pieces[idx].slope)
    };

    let mut out: Vec<Piece> = Vec::with_capacity(ev.len() + 4);
    for (i, &e) in ev.iter().enumerate() {
        let next = ev.get(i + 1).copied().unwrap_or(upto);
        let (va, sa) = slope_in(&pa, e);
        let (vb, sb) = slope_in(&pb, e);
        match op {
            PointOp::Add => out.push(Piece::new(e, va + vb, sa + sb)),
            PointOp::Min | PointOp::Max => {
                let want_min = op == PointOp::Min;
                // Crossing of the two affine extensions inside (e, next)?
                let mut split: Option<Q> = None;
                if sa != sb {
                    let x = e + (vb - va) / (sa - sb);
                    if e < x && x < next {
                        split = Some(x);
                    }
                }
                let pick = |va: Q, vb: Q, sa: Q, sb: Q| -> (Q, Q) {
                    // Which operand realizes the extremum on [e, next)?
                    // Compare values at e, ties broken by slope (after a
                    // tie no crossing can occur strictly inside).
                    let a_chosen = if want_min {
                        va < vb || (va == vb && sa <= sb)
                    } else {
                        va > vb || (va == vb && sa >= sb)
                    };
                    if a_chosen {
                        (va, sa)
                    } else {
                        (vb, sb)
                    }
                };
                match split {
                    None => {
                        let (v, s) = pick(va, vb, sa, sb);
                        out.push(Piece::new(e, v, s));
                    }
                    Some(x) => {
                        let (v1, s1) = pick(va, vb, sa, sb);
                        out.push(Piece::new(e, v1, s1));
                        // At the crossing both sides agree in value; the
                        // winner switches slope.
                        let vx = va + sa * (x - e);
                        let s2 = if s1 == sa { sb } else { sa };
                        out.push(Piece::new(x, vx, s2));
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Picks the common analysis period of two tails (for equal-rate or additive
/// combinations): the lcm of the periods present, or `None` if both affine.
/// Huge coprime periods make the lcm overflow
/// `i128`, which surfaces as [`CurveError::Arithmetic`] here instead of an
/// abort.
pub(crate) fn try_common_period(a: &TailInfo, b: &TailInfo) -> Result<Option<Q>, CurveError> {
    match (a.period, b.period) {
        (None, None) => Ok(None),
        (Some(p), None) | (None, Some(p)) => Ok(Some(p)),
        (Some(p1), Some(p2)) => Q::try_lcm(p1, p2)
            .map(Some)
            .map_err(CurveError::Arithmetic),
    }
}

/// The kernel behind the pointwise entry points: returns the combined
/// pieces and tail descriptor *before* curve construction, so the
/// validating entry points and the raw (fused-pipeline) variants share one
/// implementation.
fn try_pointwise_parts(
    a: &Curve,
    b: &Curve,
    op: PointOp,
    meter: &BudgetMeter,
) -> Result<(Vec<Piece>, Tail), CurveError> {
    let ta = TailInfo::of(a);
    let tb = TailInfo::of(b);
    let h0 = ta.s.max(tb.s);

    // Case 1: addition, or min/max with equal long-run rates.
    let equal_rates = ta.rate == tb.rate;
    if op == PointOp::Add || equal_rates {
        match try_common_period(&ta, &tb)? {
            None => {
                // Both affine. For Add the result is affine immediately; for
                // min/max the rates are equal here (distinct rates take the
                // branch below), so the lines are parallel and any horizon
                // past both tail starts works.
                let h = ck_add(h0, Q::ONE)?;
                let pieces = combine_pieces(a, b, h, &[], op, meter)?;
                Ok((pieces, Tail::Affine))
            }
            Some(p) => {
                let rate = match op {
                    PointOp::Add => ck_add(ta.rate, tb.rate)?,
                    _ => ta.rate, // equal rates
                };
                let upto = ck_add(h0, p)?;
                let pieces = combine_pieces(a, b, upto, &[h0], op, meter)?;
                let pattern_start = pieces
                    .iter()
                    .position(|q| q.start >= h0)
                    .expect("anchor piece present");
                let tail = Tail::Periodic {
                    pattern_start,
                    period: p,
                    increment: ck_mul(rate, p)?,
                };
                Ok((pieces, tail))
            }
        }
    } else {
        // Case 2: min/max with distinct rates — one curve eventually wins.
        debug_assert!(op == PointOp::Min || op == PointOp::Max);
        let a_wins = if op == PointOp::Min {
            ta.rate < tb.rate
        } else {
            ta.rate > tb.rate
        };
        let (w, wi, li) = if a_wins { (a, ta, tb) } else { (b, tb, ta) };
        // Find T0 such that the winner is certainly chosen for all t ≥ T0:
        // compare the winner's bounding line against the loser's.
        let ((wo, wr), (lo, lr)) = if op == PointOp::Min {
            (wi.upper_line(), li.lower_line())
        } else {
            (wi.lower_line(), li.upper_line())
        };
        // Solve wo + wr·t ≤/≥ lo + lr·t  ⇒  t ≥ (wo − lo)/(lr − wr) (min case).
        let t0 = (wo - lo) / (lr - wr);
        let t0 = t0.max(h0);
        match wi.period {
            None => {
                let h = ck_add(t0, Q::ONE)?;
                let pieces = combine_pieces(a, b, h, &[], op, meter)?;
                Ok((pieces, Tail::Affine))
            }
            Some(pw) => {
                // Align the future pattern start to the winner's grid.
                let k = ((t0 - wi.s) / pw).ceil().max(0);
                let hstar = ck_add(wi.s, ck_mul(pw, Q::int(k))?)?;
                let upto = ck_add(hstar, pw)?;
                let pieces = combine_pieces(a, b, upto, &[hstar], op, meter)?;
                let pattern_start = pieces
                    .iter()
                    .position(|q| q.start >= hstar)
                    .expect("anchor piece present");
                let increment = match w.tail() {
                    Tail::Periodic { increment, .. } => increment,
                    Tail::Affine => unreachable!("winner has periodic tail"),
                };
                let tail = Tail::Periodic {
                    pattern_start,
                    period: pw,
                    increment,
                };
                Ok((pieces, tail))
            }
        }
    }
}

fn try_pointwise(
    a: &Curve,
    b: &Curve,
    op: PointOp,
    meter: &BudgetMeter,
) -> Result<Curve, CurveError> {
    let (pieces, tail) = try_pointwise_parts(a, b, op, meter)?;
    Ok(Curve::new(pieces, tail).expect("pointwise result invalid"))
}

/// [`Curve::try_pointwise_min`] for fused pipelines: identical pieces, but
/// the result skips the validating constructor (the kernel's output is
/// valid by construction) and only runs the colinear-merge normalization —
/// so the intermediate a [`crate::stream::Pipe`] carries is byte-identical
/// to the materializing operator's output.
pub(crate) fn try_pointwise_min_raw(
    a: &Curve,
    b: &Curve,
    meter: &BudgetMeter,
) -> Result<Curve, CurveError> {
    let (pieces, tail) = try_pointwise_parts(a, b, PointOp::Min, meter)?;
    Ok(Curve::raw(pieces, tail).into_normalized())
}

fn pointwise(a: &Curve, b: &Curve, op: PointOp) -> Curve {
    try_pointwise(a, b, op, &BudgetMeter::unlimited())
        .expect("unmetered pointwise operation failed")
}

impl Curve {
    /// Pointwise minimum `t ↦ min(f(t), g(t))`, exact for all tail
    /// combinations.
    ///
    /// # Examples
    ///
    /// ```
    /// use srtw_minplus::{Curve, Q, q};
    /// let a = Curve::affine(Q::int(4), q(1, 2));
    /// let b = Curve::affine(Q::ZERO, Q::ONE);
    /// let m = a.pointwise_min(&b);
    /// assert_eq!(m.eval(Q::int(2)), Q::int(2));   // b below
    /// assert_eq!(m.eval(Q::int(100)), Q::int(54)); // a below
    /// ```
    #[must_use]
    pub fn pointwise_min(&self, other: &Curve) -> Curve {
        pointwise(self, other, PointOp::Min)
    }

    /// Pointwise maximum `t ↦ max(f(t), g(t))`, exact for all tail
    /// combinations.
    #[must_use]
    pub fn pointwise_max(&self, other: &Curve) -> Curve {
        pointwise(self, other, PointOp::Max)
    }

    /// Pointwise sum `t ↦ f(t) + g(t)`, exact for all tail combinations.
    #[must_use]
    pub fn pointwise_add(&self, other: &Curve) -> Curve {
        pointwise(self, other, PointOp::Add)
    }

    /// Fallible, budgeted [`Curve::pointwise_min`]: surfaces `i128`
    /// overflow (e.g. an lcm of huge coprime periods) as
    /// [`CurveError::Arithmetic`] and budget exhaustion as
    /// [`CurveError::Budget`] instead of aborting or hanging.
    pub fn try_pointwise_min(
        &self,
        other: &Curve,
        meter: &BudgetMeter,
    ) -> Result<Curve, CurveError> {
        try_pointwise(self, other, PointOp::Min, meter)
    }

    /// Fallible, budgeted [`Curve::pointwise_max`].
    pub fn try_pointwise_max(
        &self,
        other: &Curve,
        meter: &BudgetMeter,
    ) -> Result<Curve, CurveError> {
        try_pointwise(self, other, PointOp::Max, meter)
    }

    /// Fallible, budgeted [`Curve::pointwise_add`].
    pub fn try_pointwise_add(
        &self,
        other: &Curve,
        meter: &BudgetMeter,
    ) -> Result<Curve, CurveError> {
        try_pointwise(self, other, PointOp::Add, meter)
    }

    /// The non-decreasing clamped difference
    /// `t ↦ sup_{0≤s≤t} max(0, f(s) − g(s))`.
    ///
    /// This is the classical "leftover" closure used to derive remaining
    /// service curves (e.g. blind multiplexing: `β' = [β − α]⁺↑`).
    #[must_use]
    pub fn sub_clamped_monotone(&self, other: &Curve) -> Curve {
        self.try_sub_clamped_monotone(other, &BudgetMeter::unlimited())
            .expect("unmetered sub_clamped_monotone failed")
    }

    /// Fallible, budgeted [`Curve::sub_clamped_monotone`]: surfaces `i128`
    /// overflow and budget exhaustion as errors instead of aborting or
    /// materializing an astronomically long common period.
    pub fn try_sub_clamped_monotone(
        &self,
        other: &Curve,
        meter: &BudgetMeter,
    ) -> Result<Curve, CurveError> {
        let (pieces, tail) = try_sub_clamped_parts(self, other, meter)?;
        Ok(Curve::new(pieces, tail).expect("sub_clamped_monotone result invalid"))
    }

    /// Pointwise minimum over a non-empty set of curves.
    ///
    /// # Panics
    ///
    /// Panics if `curves` is empty.
    pub fn min_of(curves: &[Curve]) -> Curve {
        let (first, rest) = curves.split_first().expect("min_of of empty slice");
        rest.iter().fold(first.clone(), |acc, c| acc.pointwise_min(c))
    }

    /// Pointwise sum over a set of curves (zero curve for an empty slice).
    pub fn sum_of(curves: &[Curve]) -> Curve {
        curves
            .iter()
            .fold(Curve::zero(), |acc, c| acc.pointwise_add(c))
    }
}

/// The kernel behind [`Curve::try_sub_clamped_monotone`]: returns the
/// result's pieces and tail descriptor before curve construction, shared
/// by the validating entry point and the fused-pipeline stage (which skips
/// the validation scan and only normalizes).
pub(crate) fn try_sub_clamped_parts(
    f: &Curve,
    g: &Curve,
    meter: &BudgetMeter,
) -> Result<(Vec<Piece>, Tail), CurveError> {
    let ta = TailInfo::of(f);
    let tb = TailInfo::of(g);
    let h0 = ta.s.max(tb.s);
    let p = try_common_period(&ta, &tb)?.unwrap_or(Q::ONE);
    let dr = ta.rate - tb.rate;

    // First pass: running max on a generous base horizon.
    let h1 = ck_add(ck_add(h0, p)?, p)?;
    let (_, m1) = running_max_diff(f, g, h1, &[], meter)?;

    if dr.is_positive() {
        // The difference eventually grows. The running max becomes
        // periodic once the window is long enough that the drift over
        // one analysis period exceeds the total oscillation of the
        // difference — enlarge the period accordingly.
        let osc = (ta.dev_max - ta.dev_min) + (tb.dev_max - tb.dev_min);
        let enlarge = (osc / (dr * p)).ceil().max(0) + 1;
        let pp = ck_mul(p, Q::int(enlarge))?;
        let (alo, ar) = ta.lower_line();
        let (bup, br) = tb.upper_line();
        // diff(t) ≥ (alo − bup) + dr·t ≥ m1  ⇒  t ≥ (m1 − alo + bup)/dr
        let t0 = ((m1 - alo + bup) / (ar - br)).max(ck_add(h0, pp)?);
        let k = ((t0 - h0) / pp).ceil().max(0) + 1;
        let hstar = ck_add(h0, ck_mul(pp, Q::int(k))?)?;
        let (pieces, _) = running_max_diff(f, g, ck_add(hstar, pp)?, &[hstar], meter)?;
        let pattern_start = pieces
            .iter()
            .position(|q| q.start >= hstar)
            .expect("pattern anchor");
        let tail = Tail::Periodic {
            pattern_start,
            period: pp,
            increment: ck_mul(dr, pp)?,
        };
        Ok((pieces, tail))
    } else if dr.is_zero() {
        // The difference is eventually periodic with zero net growth:
        // the maximum over one aligned period beyond h0 is global.
        let h = ck_add(h0, p)?;
        let (mut pieces, m) = running_max_diff(f, g, h, &[], meter)?;
        pieces.push(Piece::new(h, m, Q::ZERO));
        Ok((pieces, Tail::Affine))
    } else {
        // Negative drift: the difference's upper bounding line decays;
        // once it is below the historical max, the running max is final.
        let (aup, ar) = ta.upper_line();
        let (blo, br) = tb.lower_line();
        // diff(t) ≤ (aup − blo) + dr·t ≤ m1  ⇐  t ≥ (aup − blo − m1)/(−dr)
        let t0 = ((aup - blo - m1) / (br - ar)).max(h0) + Q::ONE;
        let (mut pieces, m) = running_max_diff(f, g, t0, &[], meter)?;
        pieces.push(Piece::new(t0, m, Q::ZERO));
        Ok((pieces, Tail::Affine))
    }
}

/// Computes the running max `M(t) = sup_{s≤t} (f(s) − g(s))⁺` as explicit
/// pieces on `[0, h)`, returning them together with the final max value
/// (the left limit of `M` at `h`). `anchors` are extra mandatory
/// breakpoints. Budgeted via `meter`; errs when materializing either
/// operand up to `h` exhausts the segment budget or overflows.
pub(crate) fn running_max_diff(
    f: &Curve,
    g: &Curve,
    h: Q,
    anchors: &[Q],
    meter: &BudgetMeter,
) -> Result<(Vec<Piece>, Q), CurveError> {
    let pf = f.try_pieces_upto(h, meter)?;
    let pg = g.try_pieces_upto(h, meter)?;
    let mut ev: Vec<Q> = pf
        .iter()
        .chain(pg.iter())
        .map(|p| p.start)
        .filter(|s| *s < h)
        .chain(anchors.iter().copied().filter(|s| *s < h))
        .collect();
    ev.push(Q::ZERO);
    ev.sort();
    ev.dedup();

    let at = |pieces: &[Piece], t: Q| -> (Q, Q) {
        let idx = match pieces.binary_search_by(|p| p.start.cmp(&t)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        (pieces[idx].eval(t), pieces[idx].slope)
    };

    let mut out: Vec<Piece> = Vec::new();
    let mut m = Q::ZERO;
    let push = |p: Piece, out: &mut Vec<Piece>| {
        if let Some(last) = out.last() {
            // Keep anchor breakpoints explicit: callers locate them later.
            if !anchors.contains(&p.start)
                && last.slope == p.slope
                && last.eval(p.start) == p.value
            {
                return; // colinear continuation
            }
        }
        out.push(p);
    };
    for (i, &e) in ev.iter().enumerate() {
        let next = ev.get(i + 1).copied().unwrap_or(h);
        let (vf, sf) = at(&pf, e);
        let (vg, sg) = at(&pg, e);
        let v = vf - vg; // diff value at e
        let s = sf - sg; // diff slope on [e, next)
        let v_end = v + s * (next - e);
        if v >= m {
            // Diff already at or above the running max.
            if s.is_positive() {
                push(Piece::new(e, v, s), &mut out);
                m = v_end;
            } else {
                push(Piece::new(e, v.max(m), Q::ZERO), &mut out);
                m = m.max(v);
            }
        } else if v_end > m && s.is_positive() {
            // Diff crosses the running max inside the interval.
            let x = e + (m - v) / s;
            push(Piece::new(e, m, Q::ZERO), &mut out);
            push(Piece::new(x, m, s), &mut out);
            m = v_end;
        } else {
            push(Piece::new(e, m, Q::ZERO), &mut out);
        }
    }
    Ok((out, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::q;

    /// Dense-grid oracle: checks `combined.eval(t) == op(a(t), b(t))` for
    /// many rational sample points including far beyond all tail starts.
    fn check_pointwise(a: &Curve, b: &Curve, c: &Curve, op: fn(Q, Q) -> Q) {
        for num in 0..400 {
            let t = q(num, 3);
            let expect = op(a.eval(t), b.eval(t));
            assert_eq!(
                c.eval(t),
                expect,
                "mismatch at t = {t}: {} vs {}",
                c.eval(t),
                expect
            );
        }
    }

    #[test]
    fn add_affine_affine() {
        let a = Curve::rate_latency(Q::ONE, Q::int(3));
        let b = Curve::affine(Q::int(2), q(1, 2));
        let c = a.pointwise_add(&b);
        check_pointwise(&a, &b, &c, |x, y| x + y);
        assert_eq!(c.rate(), q(3, 2));
    }

    #[test]
    fn add_periodic_affine() {
        let a = Curve::staircase(Q::int(5), Q::int(2));
        let b = Curve::rate_latency(q(1, 3), Q::int(4));
        let c = a.pointwise_add(&b);
        check_pointwise(&a, &b, &c, |x, y| x + y);
        assert_eq!(c.rate(), q(2, 5) + q(1, 3));
    }

    #[test]
    fn add_periodic_periodic() {
        let a = Curve::staircase(Q::int(4), Q::int(3));
        let b = Curve::staircase(Q::int(6), Q::ONE);
        let c = a.pointwise_add(&b);
        check_pointwise(&a, &b, &c, |x, y| x + y);
    }

    #[test]
    fn min_distinct_rates_affine() {
        let a = Curve::affine(Q::int(4), q(1, 2)); // wins eventually? rate 1/2
        let b = Curve::affine(Q::ZERO, Q::ONE); // lower early
        let c = a.pointwise_min(&b);
        check_pointwise(&a, &b, &c, |x, y| x.min(y));
        assert_eq!(c.rate(), q(1, 2));
        let d = a.pointwise_max(&b);
        check_pointwise(&a, &b, &d, |x, y| x.max(y));
        assert_eq!(d.rate(), Q::ONE);
    }

    #[test]
    fn min_periodic_vs_affine_distinct_rates() {
        // Staircase rate 2/5 vs affine rate 1: staircase wins the min.
        let a = Curve::staircase(Q::int(5), Q::int(2));
        let b = Curve::affine(Q::ZERO, Q::ONE);
        let c = a.pointwise_min(&b);
        check_pointwise(&a, &b, &c, |x, y| x.min(y));
        assert_eq!(c.rate(), q(2, 5));
        // And the affine curve wins the max.
        let d = a.pointwise_max(&b);
        check_pointwise(&a, &b, &d, |x, y| x.max(y));
        assert_eq!(d.rate(), Q::ONE);
    }

    #[test]
    fn min_periodic_vs_periodic_distinct_rates() {
        let a = Curve::staircase(Q::int(3), Q::int(2)); // rate 2/3
        let b = Curve::staircase(Q::int(7), Q::int(3)); // rate 3/7
        let c = a.pointwise_min(&b);
        check_pointwise(&a, &b, &c, |x, y| x.min(y));
        assert_eq!(c.rate(), q(3, 7));
    }

    #[test]
    fn min_equal_rates_periodic() {
        // Same rate 1/2, different phases: result stays periodic.
        let a = Curve::staircase(Q::int(4), Q::int(2));
        let b = Curve::staircase(Q::int(2), Q::ONE).shift_up(Q::ONE);
        let c = a.pointwise_min(&b);
        check_pointwise(&a, &b, &c, |x, y| x.min(y));
        assert_eq!(c.rate(), q(1, 2));
        let d = a.pointwise_max(&b);
        check_pointwise(&a, &b, &d, |x, y| x.max(y));
    }

    #[test]
    fn min_equal_rates_affine_parallel() {
        let a = Curve::affine(Q::int(3), Q::ONE);
        let b = Curve::affine(Q::ONE, Q::ONE);
        let c = a.pointwise_min(&b);
        check_pointwise(&a, &b, &c, |x, y| x.min(y));
        let d = a.pointwise_max(&b);
        check_pointwise(&a, &b, &d, |x, y| x.max(y));
    }

    #[test]
    fn min_rate_latency_pair() {
        // Two rate-latency curves crossing once.
        let a = Curve::rate_latency(Q::int(2), Q::int(1));
        let b = Curve::rate_latency(Q::ONE, Q::ZERO);
        let c = a.pointwise_min(&b);
        check_pointwise(&a, &b, &c, |x, y| x.min(y));
        let d = a.pointwise_max(&b);
        check_pointwise(&a, &b, &d, |x, y| x.max(y));
    }

    #[test]
    fn min_of_and_sum_of() {
        let curves = vec![
            Curve::affine(Q::int(5), q(1, 3)),
            Curve::staircase(Q::int(4), Q::int(2)),
            Curve::rate_latency(Q::ONE, Q::int(2)),
        ];
        let m = Curve::min_of(&curves);
        let s = Curve::sum_of(&curves);
        for num in 0..300 {
            let t = q(num, 2);
            let vals: Vec<Q> = curves.iter().map(|c| c.eval(t)).collect();
            assert_eq!(m.eval(t), vals.iter().copied().fold(vals[0], Q::min));
            assert_eq!(s.eval(t), vals.iter().copied().fold(Q::ZERO, |a, b| a + b));
        }
    }

    #[test]
    #[should_panic(expected = "min_of of empty slice")]
    fn min_of_empty_panics() {
        let _ = Curve::min_of(&[]);
    }

    /// Brute-force oracle for the running-max difference. Samples a dense
    /// grid that contains every breakpoint of the integer-parameter test
    /// curves, and additionally probes left limits there (the supremum may
    /// only be approached from the left at a downward jump of `f − g`).
    fn brute_sub_clamped(f: &Curve, g: &Curve, t: Q, steps: i128) -> Q {
        let mut m = Q::ZERO;
        for i in 0..=steps {
            let s = t * q(i, steps);
            m = m.max((f.eval(s) - g.eval(s)).clamp_nonneg());
            m = m.max((f.eval_left(s) - g.eval_left(s)).clamp_nonneg());
        }
        m
    }

    #[test]
    fn sub_clamped_monotone_positive_drift() {
        // β − α with β growing faster: leftover service.
        let beta = Curve::rate_latency(Q::int(2), Q::int(3));
        let alpha = Curve::staircase(Q::int(4), Q::int(3)); // rate 3/4 < 2
        let left = beta.sub_clamped_monotone(&alpha);
        for num in 0..160 {
            let t = q(num, 2);
            assert_eq!(
                left.eval(t),
                brute_sub_clamped(&beta, &alpha, t, 4 * num.max(1)),
                "at t = {t}"
            );
        }
        assert_eq!(left.rate(), Q::int(2) - q(3, 4));
    }

    #[test]
    fn sub_clamped_monotone_zero_drift() {
        let a = Curve::staircase(Q::int(4), Q::int(2));
        let b = Curve::affine(Q::ZERO, q(1, 2));
        let d = a.sub_clamped_monotone(&b);
        for num in 0..160 {
            let t = q(num, 2);
            assert_eq!(d.eval(t), brute_sub_clamped(&a, &b, t, 4 * num.max(1)));
        }
        assert_eq!(d.rate(), Q::ZERO);
    }

    #[test]
    fn sub_clamped_monotone_negative_drift() {
        let a = Curve::affine(Q::int(5), q(1, 4));
        let b = Curve::rate_latency(Q::ONE, Q::int(2));
        let d = a.sub_clamped_monotone(&b);
        for num in 0..160 {
            let t = q(num, 2);
            assert_eq!(d.eval(t), brute_sub_clamped(&a, &b, t, 4 * num.max(1)));
        }
        assert_eq!(d.rate(), Q::ZERO);
        // Eventually flat at the early maximum 5 + t/4 - (t-2) capped: max at
        // the crossing region; just check monotone and bounded.
        assert!(d.eval(Q::int(1000)) <= Q::int(7));
    }

    #[test]
    fn results_are_monotone_curves() {
        // The Curve constructor enforces monotonicity; exercising a few
        // combinations shouldn't panic.
        let curves = vec![
            Curve::zero(),
            Curve::constant(Q::int(3)),
            Curve::affine(Q::ONE, q(2, 3)),
            Curve::rate_latency(q(3, 2), q(5, 2)),
            Curve::staircase(q(7, 2), Q::int(2)),
            Curve::staircase_lower(Q::int(3), Q::ONE),
        ];
        for a in &curves {
            for b in &curves {
                let _ = a.pointwise_min(b);
                let _ = a.pointwise_max(b);
                let _ = a.pointwise_add(b);
                let _ = a.sub_clamped_monotone(b);
            }
        }
    }
}
