//! `srtw` — command-line front end for the structural delay analysis.
//!
//! ```text
//! srtw analyze  <system.srtw> [--scheduler fifo|fp|edf] [--json]
//!               [--budget-ms MS] [--max-paths N] [--max-segments N]
//! srtw rbf      <system.srtw> [--horizon H]
//! srtw dot      <system.srtw>
//! srtw simulate <system.srtw> [--seeds N] [--horizon H]
//! ```
//!
//! System files use the text format documented in [`srtw::textfmt`].
//! `--json` switches `analyze` to a machine-readable single-document
//! output (see [`srtw::Json`]) that includes each report's `quality`
//! object and a top-level `degraded` flag.
//!
//! # Budgets
//!
//! `--budget-ms`, `--max-paths` and `--max-segments` cap the analysis
//! effort. When a cap trips, the analysis does not fail: it degrades
//! gracefully to sound (possibly pessimistic) bounds, prints a warning on
//! stderr and still exits 0.
//!
//! # Exit codes
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | success — bounds exact, or degraded with a stderr warning |
//! | 2 | input error — unreadable file, parse error, bad flags |
//! | 3 | internal — analysis failure (unstable system, arithmetic overflow, exhausted budget with no sound fallback) or a residual panic |

use srtw::textfmt::{parse_system, SystemSpec};
use srtw::{
    earliest_random_walk, edf_schedulable, fifo_rtc_with, fifo_structural,
    fixed_priority_structural_with, simulate_fifo, AnalysisConfig, Budget, Curve, DelayAnalysis,
    Json, Q, Rbf, ServiceProcess,
};
use std::process::ExitCode;

/// CLI failure, split by exit code.
enum CliError {
    /// Unreadable/malformed input or bad flags — exit code 2.
    Input(String),
    /// Analysis failure or residual panic — exit code 3.
    Internal(String),
}

fn input(msg: impl Into<String>) -> CliError {
    CliError::Input(msg.into())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Residual panics (library bugs) must not abort with a backtrace dump:
    // silence the default hook and convert them to exit code 3. Budget and
    // arithmetic failures never panic by design; this is the last line of
    // defence the exit-code contract promises.
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = std::panic::catch_unwind(|| run(&args));
    let _ = std::panic::take_hook();
    match outcome {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(CliError::Input(msg))) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
        Ok(Err(CliError::Internal(msg))) => {
            eprintln!("internal error: {msg}");
            ExitCode::from(3)
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".into());
            eprintln!("internal error: unexpected panic: {msg}");
            ExitCode::from(3)
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let usage = "usage: srtw <analyze|rbf|dot|simulate> <file> [options]";
    let cmd = args.first().ok_or_else(|| input(usage))?;
    let path = args.get(1).ok_or_else(|| input(usage))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| input(format!("cannot read {path}: {e}")))?;
    let sys = parse_system(&text).map_err(|e| input(format!("{path}: {e}")))?;
    let opts = &args[2..];

    match cmd.as_str() {
        "analyze" => analyze(&sys, opts),
        "rbf" => rbf(&sys, opts),
        "dot" => {
            for t in &sys.tasks {
                print!("{}", t.to_dot());
            }
            Ok(())
        }
        "simulate" => simulate(&sys, opts),
        other => Err(input(format!("unknown command '{other}'\n{usage}"))),
    }
}

fn opt_value(opts: &[String], key: &str) -> Option<String> {
    opts.iter()
        .position(|a| a == key)
        .and_then(|i| opts.get(i + 1))
        .cloned()
}

fn parse_budget(opts: &[String]) -> Result<Budget, CliError> {
    let mut budget = Budget::default();
    if let Some(v) = opt_value(opts, "--budget-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|e| input(format!("bad --budget-ms '{v}': {e}")))?;
        budget = budget.with_wall_ms(ms);
    }
    if let Some(v) = opt_value(opts, "--max-paths") {
        let n: u64 = v
            .parse()
            .map_err(|e| input(format!("bad --max-paths '{v}': {e}")))?;
        budget = budget.with_max_paths(n);
    }
    if let Some(v) = opt_value(opts, "--max-segments") {
        let n: u64 = v
            .parse()
            .map_err(|e| input(format!("bad --max-segments '{v}': {e}")))?;
        budget = budget.with_max_segments(n);
    }
    Ok(budget)
}

fn server_curve(sys: &SystemSpec) -> Result<Curve, CliError> {
    match &sys.server {
        Some(s) => s.beta_lower().map_err(|e| CliError::Internal(e.to_string())),
        None => Err(input(
            "the system file declares no server (add a 'server …' line)",
        )),
    }
}

/// Prints the stderr degradation warning and reports whether any stream
/// degraded (the process still exits 0).
fn warn_if_degraded(per: &[DelayAnalysis], rtc_degraded: bool) -> bool {
    let mut kinds: Vec<String> = per
        .iter()
        .flat_map(|a| a.degradations.iter().map(|d| d.tripped.to_string()))
        .collect();
    if rtc_degraded && kinds.is_empty() {
        kinds.push("budget".into());
    }
    if kinds.is_empty() {
        return false;
    }
    kinds.sort();
    kinds.dedup();
    eprintln!(
        "warning: analysis budget exhausted ({}); reported bounds are sound but degraded",
        kinds.join(", ")
    );
    true
}

fn analyze(sys: &SystemSpec, opts: &[String]) -> Result<(), CliError> {
    let beta = server_curve(sys)?;
    let scheduler = opt_value(opts, "--scheduler").unwrap_or_else(|| "fifo".into());
    let json = opts.iter().any(|a| a == "--json");
    let budget = parse_budget(opts)?;
    let cfg = AnalysisConfig {
        budget: budget.clone(),
        ..Default::default()
    };
    match scheduler.as_str() {
        "fifo" => {
            let per = fifo_structural(&sys.tasks, &beta, &cfg)
                .map_err(|e| CliError::Internal(e.to_string()))?;
            let rtc = fifo_rtc_with(&sys.tasks, &beta, &budget)
                .map_err(|e| CliError::Internal(e.to_string()))?;
            let degraded = warn_if_degraded(&per, !rtc.quality.is_exact());
            if json {
                println!(
                    "{}",
                    Json::object(vec![
                        ("scheduler", Json::str("fifo")),
                        ("degraded", Json::Bool(degraded)),
                        ("rtc", rtc.to_json()),
                        (
                            "streams",
                            Json::Array(per.iter().map(|a| a.to_json()).collect()),
                        ),
                    ])
                );
            } else {
                println!("scheduler: FIFO");
                println!("RTC baseline (stream-agnostic): {rtc}");
                for a in &per {
                    println!("\n{a}");
                }
            }
        }
        "fp" => {
            let per = fixed_priority_structural_with(&sys.tasks, &beta, &cfg)
                .map_err(|e| CliError::Internal(e.to_string()))?;
            let degraded = warn_if_degraded(&per, false);
            if json {
                println!(
                    "{}",
                    Json::object(vec![
                        ("scheduler", Json::str("fp")),
                        ("degraded", Json::Bool(degraded)),
                        (
                            "streams",
                            Json::Array(per.iter().map(|a| a.to_json()).collect()),
                        ),
                    ])
                );
            } else {
                println!("scheduler: fixed priority (file order = priority order)");
                for (i, a) in per.iter().enumerate() {
                    println!("\npriority {i}:\n{a}");
                }
            }
        }
        "edf" => {
            let r = edf_schedulable(&sys.tasks, &beta)
                .map_err(|e| CliError::Internal(e.to_string()))?;
            if json {
                println!(
                    "{}",
                    Json::object(vec![
                        ("scheduler", Json::str("edf")),
                        ("degraded", Json::Bool(false)),
                        ("report", r.to_json()),
                    ])
                );
            } else {
                println!("scheduler: EDF (processor-demand criterion)");
                println!(
                    "schedulable: {} (busy window ≤ {}, {} breakpoints)",
                    r.schedulable, r.busy_window, r.breakpoints
                );
                if let Some((t, demand, supply)) = r.violation {
                    println!("first violation: window {t}: demand {demand} > supply {supply}");
                }
            }
        }
        other => return Err(input(format!("unknown scheduler '{other}' (fifo|fp|edf)"))),
    }
    Ok(())
}

fn rbf(sys: &SystemSpec, opts: &[String]) -> Result<(), CliError> {
    let horizon: Q = opt_value(opts, "--horizon")
        .unwrap_or_else(|| "100".into())
        .parse()
        .map_err(|e| input(format!("bad --horizon: {e}")))?;
    for t in &sys.tasks {
        let rbf = Rbf::compute(t, horizon);
        println!("task {}: rbf breakpoints (window, work):", t.name());
        for &(s, w) in rbf.points() {
            println!("  {s:>8}  {w}");
        }
    }
    Ok(())
}

fn simulate(sys: &SystemSpec, opts: &[String]) -> Result<(), CliError> {
    let beta = server_curve(sys)?;
    let seeds: u64 = opt_value(opts, "--seeds")
        .unwrap_or_else(|| "20".into())
        .parse()
        .map_err(|e| input(format!("bad --seeds: {e}")))?;
    let horizon: Q = opt_value(opts, "--horizon")
        .unwrap_or_else(|| "300".into())
        .parse()
        .map_err(|e| input(format!("bad --horizon: {e}")))?;
    // Simulate on the fluid instance at the server's guaranteed rate
    // (which dominates the declared lower curve).
    let service = ServiceProcess::fluid(beta.rate());
    let per = fifo_structural(&sys.tasks, &beta, &AnalysisConfig::default())
        .map_err(|e| CliError::Internal(e.to_string()))?;
    let mut worst = Q::ZERO;
    for seed in 0..seeds {
        let traces: Vec<_> = sys
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| earliest_random_walk(t, horizon, None, seed * 131 + i as u64))
            .collect();
        let out = simulate_fifo(&sys.tasks, &traces, &service);
        for (si, task) in sys.tasks.iter().enumerate() {
            for v in task.vertex_ids() {
                let d = out.max_delay_of(si, v);
                worst = worst.max(d);
                if d > per[si].bound_of(v) {
                    return Err(CliError::Internal(format!(
                        "BUG: simulated delay {d} exceeds bound {} (stream {si}, {v})",
                        per[si].bound_of(v)
                    )));
                }
            }
        }
    }
    println!(
        "simulated {seeds} random runs to horizon {horizon}: worst observed delay {worst} \
         (all within the analytic per-type bounds)"
    );
    Ok(())
}
