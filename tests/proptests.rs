//! Cross-crate property-based tests: the analysis theorems must hold for
//! arbitrary generated workloads and servers.

use proptest::prelude::*;
use srtw::{Server,
    earliest_random_walk, generate_drt, rtc_delay, simulate_fifo, structural_delay,
    structural_delay_with, AnalysisConfig, Curve, DrtGenConfig, DrtTask, Q, ServiceProcess, q,
};

/// Strategy: a random generated task plus the parameters that shaped it.
fn task_strategy() -> impl Strategy<Value = DrtTask> {
    (2usize..7, 0usize..8, 1i128..8, any::<u64>()).prop_map(|(n, extra, unum, seed)| {
        let cfg = DrtGenConfig {
            vertices: n,
            extra_edges: extra,
            separation_range: (3, 20),
            wcet_range: (1, 6),
            target_utilization: Some(Q::new(unum, 10)),
            deadline_factor: None,
        };
        generate_drt(&cfg, seed)
    })
}

/// Strategy: a random stable server for the given demand-rate ceiling.
fn server_strategy() -> impl Strategy<Value = Curve> {
    prop_oneof![
        (8i128..=20, 0i128..=8).prop_map(|(r, t)| Curve::rate_latency(q(r, 10), Q::int(t))),
        Just(Curve::affine(Q::ZERO, Q::ONE)),
        (1i128..=3, 4i128..=6).prop_map(|(slot, cycle)| {
            srtw::TdmaServer::new(Q::int(slot), Q::int(cycle), Q::int(2))
                .expect("valid tdma")
                .beta_lower()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stream_max_equals_rtc(task in task_strategy(), beta in server_strategy()) {
        prop_assume!(srtw::long_run_utilization(&task) < beta.rate());
        let s = structural_delay(&task, &beta).unwrap();
        let r = rtc_delay(&task, &beta).unwrap();
        prop_assert_eq!(s.stream_bound, r.bound);
        for vb in &s.per_vertex {
            prop_assert!(vb.bound <= r.bound);
        }
    }

    #[test]
    fn pruning_is_lossless(task in task_strategy(), beta in server_strategy()) {
        prop_assume!(srtw::long_run_utilization(&task) < beta.rate());
        let pruned = structural_delay(&task, &beta).unwrap();
        let raw = structural_delay_with(&task, &beta, &AnalysisConfig {
            no_prune: true,
            ..Default::default()
        }).unwrap();
        for (a, b) in pruned.per_vertex.iter().zip(raw.per_vertex.iter()) {
            prop_assert_eq!(a.bound, b.bound, "pruning changed a bound");
        }
        prop_assert!(raw.paths_retained >= pruned.paths_retained);
    }

    #[test]
    fn horizon_fraction_is_sound_and_bracketed(
        task in task_strategy(),
        beta in server_strategy(),
        knum in 0i128..=4,
    ) {
        prop_assume!(srtw::long_run_utilization(&task) < beta.rate());
        let full = structural_delay(&task, &beta).unwrap();
        let rtc = rtc_delay(&task, &beta).unwrap();
        let a = structural_delay_with(&task, &beta, &AnalysisConfig {
            horizon_fraction: Some(q(knum, 4)),
            ..Default::default()
        }).unwrap();
        let max = a.per_vertex.iter().map(|b| b.bound).fold(Q::ZERO, Q::max);
        prop_assert!(max <= rtc.bound, "partial analysis worse than RTC");
        for (x, f) in a.per_vertex.iter().zip(full.per_vertex.iter()) {
            prop_assert!(x.bound >= f.bound, "partial analysis unsound vs full");
        }
    }

    #[test]
    fn simulated_delays_below_bounds(
        task in task_strategy(),
        trace_seed in any::<u64>(),
    ) {
        let rate = Q::ONE;
        let beta = Curve::affine(Q::ZERO, rate);
        prop_assume!(srtw::long_run_utilization(&task) < rate);
        let analysis = structural_delay(&task, &beta).unwrap();
        let trace = earliest_random_walk(&task, Q::int(150), None, trace_seed);
        prop_assert!(trace.is_legal(&task));
        let out = simulate_fifo(
            std::slice::from_ref(&task),
            std::slice::from_ref(&trace),
            &ServiceProcess::fluid(rate),
        );
        for v in task.vertex_ids() {
            prop_assert!(out.max_delay_of(0, v) <= analysis.bound_of(v));
        }
    }

    #[test]
    fn rbf_envelope_dominates_every_trace(task in task_strategy(), seed in any::<u64>()) {
        let rbf = srtw::Rbf::compute(&task, Q::int(100));
        let trace = earliest_random_walk(&task, Q::int(100), None, seed);
        // Any window of any legal trace carries at most rbf(len) work.
        let releases = trace.releases();
        for i in 0..releases.len() {
            for j in i..releases.len() {
                let len = releases[j].time - releases[i].time;
                let work: Q = releases[i..=j]
                    .iter()
                    .map(|r| task.wcet(r.vertex))
                    .fold(Q::ZERO, |a, b| a + b);
                prop_assert!(work <= rbf.eval(len), "trace window exceeds rbf");
            }
        }
    }

    #[test]
    fn utilization_bounds_rbf_growth(task in task_strategy()) {
        // rbf(t) ≤ U·t + n·max_wcet (coarse linear envelope).
        let u = srtw::long_run_utilization(&task);
        let rbf = srtw::Rbf::compute(&task, Q::int(200));
        let slack = task.max_wcet() * Q::int(task.num_vertices() as i128 + 1);
        for i in 0..=20 {
            let t = Q::int(i * 10);
            prop_assert!(rbf.eval(t) <= u * t + slack,
                "rbf({}) = {} exceeds linear envelope", t, rbf.eval(t));
        }
    }
}
