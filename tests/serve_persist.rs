//! End-to-end coverage of the crash-safe persistent result store,
//! driven through the real binary:
//!
//! - **Full-restart warm `/analyze`** — a result cached (and spilled)
//!   before a clean shutdown replays byte-identically from a brand-new
//!   process over the same `--persist` directory, as a cache *hit*
//!   (`persist_loaded` ≥ 1, zero cold misses on the restarted server).
//! - **Warm-journal `/batch`** — a manifest whose journal is fully
//!   complete streams its replay from a restarted server without
//!   running the supervisor at all (`"replayed":N`, `batch_jobs` 0).
//! - **Replica SIGKILL mid-flood** — under `--replicas 2 --persist`,
//!   killing one replica mid-flood never produces a wrong byte, and the
//!   respawned replica warm-loads the *shared* spill directory: the
//!   fleet's aggregated `cache_hits` advance with no new cold
//!   recompute (`cache_misses` frozen, `persist_loaded` ≥ 1).
#![cfg(unix)]

use srtw::serve::http::client_roundtrip;
use srtw::serve::sys;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const SMALL_SYSTEM: &str =
    "task t\nvertex a wcet=2 deadline=9\nedge a a sep=8\nserver fluid rate=1\n";

/// A scratch directory for spill files, journals, and job copies.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "srtw-serve-persist-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch { dir }
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// A running `srtw serve` process (single or replicated) with stdout
/// captured for address discovery.
struct Served {
    child: Child,
    public: SocketAddr,
    admin: Option<SocketAddr>,
    /// `(index, pid, admin)` per replica announce, in announce order.
    replicas: Vec<(usize, u32, SocketAddr)>,
    log: Arc<Mutex<Vec<String>>>,
}

impl Served {
    fn spawn(args: &[&str], want_replicas: usize) -> Served {
        let mut child = Command::new(env!("CARGO_BIN_EXE_srtw"))
            .arg("serve")
            .args(args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn srtw serve");
        let stdout = child.stdout.take().expect("stdout was piped");
        let log = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = Arc::clone(&log);
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                match line {
                    Ok(line) => sink.lock().unwrap().push(line),
                    Err(_) => return,
                }
            }
        });
        let deadline = Instant::now() + Duration::from_secs(20);
        let (mut public, mut admin) = (None, None);
        let mut replicas = Vec::new();
        while Instant::now() < deadline {
            for line in log.lock().unwrap().iter() {
                if let Some(rest) = line.strip_prefix("srtw-serve listening on ") {
                    public = rest.trim().parse().ok();
                } else if let Some(rest) = line.strip_prefix("srtw-serve supervisor admin on ") {
                    admin = rest.trim().parse().ok();
                } else if let Some((index, pid, addr)) = parse_replica_announce(line) {
                    if !replicas.iter().any(|&(_, p, _)| p == pid) {
                        replicas.push((index, pid, addr));
                    }
                }
            }
            let replicated_ready = want_replicas == 0
                || (admin.is_some() && replicas.len() >= want_replicas);
            if public.is_some() && replicated_ready {
                return Served {
                    child,
                    public: public.unwrap(),
                    admin,
                    replicas,
                    log,
                };
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let _ = child.kill();
        let _ = child.wait();
        panic!("serve never announced; stdout: {:?}", log.lock().unwrap());
    }

    /// Graceful stop via whichever shutdown plane this mode has.
    fn stop(mut self) {
        let target = self.admin.unwrap_or(self.public);
        let _ = client_roundtrip(&target, "POST", "/shutdown", &[], b"");
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if let Ok(Some(_)) = self.child.try_wait() {
                return;
            }
            if Instant::now() >= deadline {
                let _ = self.child.kill();
                let _ = self.child.wait();
                panic!("serve did not drain; stdout: {:?}", self.log.lock().unwrap());
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Served {
    fn drop(&mut self) {
        if let Ok(Some(_)) = self.child.try_wait() {
            return;
        }
        let target = self.admin.unwrap_or(self.public);
        let _ = client_roundtrip(&target, "POST", "/shutdown", &[], b"");
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if let Ok(Some(_)) = self.child.try_wait() {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// `srtw-serve replica <i> pid <pid> admin on <addr>`.
fn parse_replica_announce(line: &str) -> Option<(usize, u32, SocketAddr)> {
    let rest = line.trim().strip_prefix("srtw-serve replica ")?;
    let mut words = rest.split(' ');
    let index = words.next()?.parse().ok()?;
    if words.next()? != "pid" {
        return None;
    }
    let pid = words.next()?.parse().ok()?;
    if (words.next()?, words.next()?) != ("admin", "on") {
        return None;
    }
    let addr = words.next()?.parse().ok()?;
    Some((index, pid, addr))
}

fn get_stats(addr: &SocketAddr) -> String {
    let (status, _, body) =
        client_roundtrip(addr, "GET", "/stats", &[], b"").expect("stats scrape");
    assert_eq!(status, 200, "{body}");
    body
}

/// Pulls `"key":<integer>` out of a flat JSON document (the serve
/// renderer emits no whitespace, so a textual scrape is exact). With
/// `after`, scanning starts past that marker — used to read a counter
/// out of the supervisor's `"aggregate"` object rather than a
/// per-replica one.
fn scrape_u64(body: &str, after: Option<&str>, key: &str) -> u64 {
    let start = match after {
        None => 0,
        Some(marker) => body.find(marker).map(|p| p + marker.len()).unwrap_or(0),
    };
    let needle = format!("\"{key}\":");
    let at = body[start..]
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} missing after {after:?} in {body}"))
        + start
        + needle.len();
    body[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

/// Strips every `"runtime_secs":<number>` value — each replica computes
/// its own cold copy, so *cross-replica* byte-identity holds modulo the
/// one wall-clock field (warm hits against a single replica replay its
/// stored bytes verbatim, runtime included; the restart tests assert
/// that strict form).
fn strip_runtime(doc: &str) -> String {
    let mut out = String::with_capacity(doc.len());
    let mut rest = doc;
    while let Some(pos) = rest.find("\"runtime_secs\":") {
        let after = pos + "\"runtime_secs\":".len();
        out.push_str(&rest[..after]);
        out.push('0');
        let tail = &rest[after..];
        let end = tail.find([',', '}']).unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

#[test]
fn full_restart_replays_warm_and_byte_identical() {
    let fx = Scratch::new("restart");
    let persist = fx.dir.join("spill");
    let persist = persist.to_str().unwrap();

    let first = Served::spawn(&["--addr", "127.0.0.1:0", "--persist", persist], 0);
    let (status, _, cold) =
        client_roundtrip(&first.public, "POST", "/analyze", &[], SMALL_SYSTEM.as_bytes())
            .expect("cold analyze");
    assert_eq!(status, 200, "{cold}");
    // In-memory warm hit replays the body verbatim (runtime included).
    let (status, _, warm) =
        client_roundtrip(&first.public, "POST", "/analyze", &[], SMALL_SYSTEM.as_bytes())
            .expect("warm analyze");
    assert_eq!(status, 200);
    assert_eq!(warm, cold, "an in-memory hit must replay verbatim");
    let stats = get_stats(&first.public);
    assert!(scrape_u64(&stats, None, "persist_stored") >= 1, "{stats}");
    assert_eq!(scrape_u64(&stats, None, "persist_errors"), 0, "{stats}");
    first.stop();

    // A brand-new process over the same directory answers warm: the
    // very first POST is a cache hit with the exact stored bytes.
    let second = Served::spawn(&["--addr", "127.0.0.1:0", "--persist", persist], 0);
    let (status, _, revived) =
        client_roundtrip(&second.public, "POST", "/analyze", &[], SMALL_SYSTEM.as_bytes())
            .expect("post-restart analyze");
    assert_eq!(status, 200);
    assert_eq!(revived, cold, "a restart-warm hit must replay verbatim");
    let stats = get_stats(&second.public);
    assert!(scrape_u64(&stats, None, "persist_loaded") >= 1, "{stats}");
    assert_eq!(scrape_u64(&stats, None, "cache_hits"), 1, "{stats}");
    assert_eq!(
        scrape_u64(&stats, None, "cache_misses"),
        0,
        "a warm restart must not recompute: {stats}"
    );
    second.stop();
}

#[test]
fn complete_journal_fast_paths_batch_replay_across_restart() {
    let fx = Scratch::new("journal");
    let text = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("systems/decoder.srtw"),
    )
    .expect("read seed system");
    let mut manifest = String::new();
    for i in 0..4 {
        let path = fx.dir.join(format!("job-{i}.srtw"));
        std::fs::write(&path, &text).expect("write job copy");
        manifest.push_str(&format!("{}\n", path.display()));
    }
    let journal = fx.dir.join("serve.journal");
    let journal = journal.to_str().unwrap();

    let first = Served::spawn(
        &["--addr", "127.0.0.1:0", "--journal", journal, "--workers", "2"],
        0,
    );
    let (status, _, fresh) =
        client_roundtrip(&first.public, "POST", "/batch", &[], manifest.as_bytes())
            .expect("fresh batch");
    assert_eq!(status, 200, "{fresh}");
    assert!(fresh.lines().last().unwrap().contains("\"replayed\":0"), "{fresh}");
    first.stop();

    // The journal now covers the whole manifest: a restarted server must
    // stream the replay without running a single fresh job — per-job
    // wall-time provenance makes byte-identity the proof (a recompute
    // could not reproduce the stored wall times).
    let second = Served::spawn(
        &["--addr", "127.0.0.1:0", "--journal", journal, "--workers", "2"],
        0,
    );
    let (status, _, replayed) =
        client_roundtrip(&second.public, "POST", "/batch", &[], manifest.as_bytes())
            .expect("replayed batch");
    assert_eq!(status, 200, "{replayed}");
    assert!(
        replayed.lines().last().unwrap().contains("\"replayed\":4"),
        "{replayed}"
    );
    let job_lines = |body: &str| -> Vec<String> {
        let mut lines: Vec<String> = body
            .lines()
            .filter(|l| !l.starts_with("{\"summary\""))
            .map(str::to_string)
            .collect();
        lines.sort();
        lines
    };
    assert_eq!(
        job_lines(&fresh),
        job_lines(&replayed),
        "the fast-path replay must carry the journaled bytes verbatim"
    );
    let stats = get_stats(&second.public);
    assert_eq!(
        scrape_u64(&stats, None, "batch_jobs"),
        0,
        "no fresh job may run on the fast path: {stats}"
    );
    assert_eq!(scrape_u64(&stats, None, "batch_replayed"), 4, "{stats}");
    second.stop();
}

#[test]
fn sigkill_replica_mid_flood_respawns_warm_from_the_shared_store() {
    let fx = Scratch::new("replica");
    let persist = fx.dir.join("spill");
    let persist = persist.to_str().unwrap();
    let served = Served::spawn(
        &[
            "--addr",
            "127.0.0.1:0",
            "--replicas",
            "2",
            "--workers",
            "2",
            "--drain-ms",
            "2000",
            "--persist",
            persist,
        ],
        2,
    );
    let admin = served.admin.expect("replicated mode has an admin plane");

    // Prewarm until *both* replicas have cold-missed once and spilled
    // the result — the kernel load-balances accepts, so a bounded loop
    // reaches both w.h.p.
    let expected = {
        let (status, _, body) =
            client_roundtrip(&served.public, "POST", "/analyze", &[], SMALL_SYSTEM.as_bytes())
                .expect("first prewarm");
        assert_eq!(status, 200, "{body}");
        strip_runtime(&body)
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = get_stats(&admin);
        if scrape_u64(&stats, Some("\"aggregate\""), "persist_stored") >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "prewarm never reached both replicas: {stats}"
        );
        let (status, _, body) =
            client_roundtrip(&served.public, "POST", "/analyze", &[], SMALL_SYSTEM.as_bytes())
                .expect("prewarm");
        assert_eq!(status, 200);
        assert_eq!(
            strip_runtime(&body),
            expected,
            "prewarm answers must stay byte-identical"
        );
    }
    let misses_before = {
        let stats = get_stats(&admin);
        scrape_u64(&stats, Some("\"aggregate\""), "cache_misses")
    };
    assert_eq!(misses_before, 2, "one cold miss per replica");

    // Flood from a background thread while the kill lands: every 200
    // that comes back — before, during, and after the crash window —
    // must carry the exact prewarmed bytes. Transport errors are
    // expected (connections die with the replica) and tolerated.
    let stop = Arc::new(AtomicBool::new(false));
    let flooder = {
        let stop = Arc::clone(&stop);
        let public = served.public;
        let expected = expected.clone();
        std::thread::spawn(move || {
            let mut ok = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if let Ok((200, _, body)) =
                    client_roundtrip(&public, "POST", "/analyze", &[], SMALL_SYSTEM.as_bytes())
                {
                    assert_eq!(strip_runtime(&body), expected, "a flood answer changed bytes");
                    ok += 1;
                }
            }
            ok
        })
    };

    let (victim_index, victim_pid, _) = served.replicas[0];
    assert!(sys::send_signal(victim_pid, sys::SIGKILL));

    // Wait for the respawn announce (same index, new pid) and quorum.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let respawned = served.log.lock().unwrap().iter().any(|l| {
            parse_replica_announce(l)
                .is_some_and(|(i, pid, _)| i == victim_index && pid != victim_pid)
        });
        let ready = matches!(
            client_roundtrip(&admin, "GET", "/readyz", &[], b""),
            Ok((200, _, _))
        );
        if respawned && ready {
            break;
        }
        assert!(Instant::now() < deadline, "replica never respawned warm");
        std::thread::sleep(Duration::from_millis(50));
    }
    // Let the flood keep both replicas busy a moment longer, then stop.
    std::thread::sleep(Duration::from_millis(500));
    stop.store(true, Ordering::Relaxed);
    let flood_hits = flooder.join().expect("flooder panicked");
    assert!(flood_hits > 0, "the flood never landed a request");

    // The respawned replica inherited the shared spill directory: the
    // aggregate shows its warm load, and — decisively — the fleet's
    // cache_hits advanced while cache_misses *shrank* (the dead
    // replica's miss left the aggregate and the warm respawn never
    // added one). A cold respawn would hold the aggregate at two.
    let deadline = Instant::now() + Duration::from_secs(20);
    let stats = loop {
        let stats = get_stats(&admin);
        let loaded = scrape_u64(&stats, Some("\"aggregate\""), "persist_loaded");
        let hits = scrape_u64(&stats, Some("\"aggregate\""), "cache_hits");
        if loaded >= 1 && hits >= 1 {
            break stats;
        }
        assert!(
            Instant::now() < deadline,
            "aggregate never showed a warm load: {stats}"
        );
        let (status, _, body) =
            client_roundtrip(&served.public, "POST", "/analyze", &[], SMALL_SYSTEM.as_bytes())
                .expect("post-respawn analyze");
        assert_eq!(status, 200);
        assert_eq!(strip_runtime(&body), expected);
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(
        scrape_u64(&stats, Some("\"aggregate\""), "cache_misses"),
        1,
        "the respawned replica must answer warm, not recompute: {stats}"
    );
    assert_eq!(
        scrape_u64(&stats, Some("\"aggregate\""), "persist_errors"),
        0,
        "{stats}"
    );

    served.stop();
}
