//! Property-based tests for the workload generator.
//!
//! Runs on the in-house seeded harness ([`srtw_detrand::prop`]); set
//! `SRTW_PROP_CASES` / `SRTW_PROP_SEED` / `SRTW_PROP_REPLAY` to control it.

use srtw_detrand::prop::forall;
use srtw_detrand::Rng;
use srtw_gen::{generate_drt, generate_task_set, DrtGenConfig};
use srtw_minplus::Q;
use srtw_workload::long_run_utilization;

fn config(rng: &mut Rng) -> DrtGenConfig {
    DrtGenConfig {
        vertices: rng.random_range(2usize..8),
        extra_edges: rng.random_range(0usize..10),
        separation_range: (3, 30),
        wcet_range: (1, 8),
        target_utilization: Some(Q::new(rng.random_range(1i128..9), 10)),
        deadline_factor: if rng.random_bool() {
            Some(Q::int(2))
        } else {
            None
        },
    }
}

#[test]
fn generator_is_deterministic_and_hits_target() {
    forall(
        "generator_is_deterministic_and_hits_target",
        |rng, _| (config(rng), rng.next_u64()),
        |(cfg, seed)| {
            let a = generate_drt(cfg, *seed);
            let b = generate_drt(cfg, *seed);
            assert_eq!(&a, &b, "same seed must reproduce the same task");
            assert_eq!(a.num_vertices(), cfg.vertices);
            assert_eq!(
                long_run_utilization(&a),
                cfg.target_utilization.unwrap(),
                "exact utilization rescaling failed"
            );
            assert!(a.has_cycle(), "ring construction guarantees a cycle");
            if cfg.deadline_factor.is_some() {
                for v in a.vertex_ids() {
                    assert!(a.deadline(v).is_some());
                }
            }
        },
    );
}

#[test]
fn task_sets_partition_utilization() {
    forall(
        "task_sets_partition_utilization",
        |rng, _| {
            (
                config(rng),
                rng.random_range(1usize..5),
                rng.next_u64(),
                rng.random_range(1i128..9),
            )
        },
        |(cfg, count, seed, unum)| {
            let total = Q::new(*unum, 10);
            let set = generate_task_set(cfg, *count, total, *seed);
            assert_eq!(set.len(), *count);
            let sum: Q = set
                .iter()
                .map(long_run_utilization)
                .fold(Q::ZERO, |a, b| a + b);
            assert_eq!(sum, total);
        },
    );
}

#[test]
fn generated_graphs_are_analysable() {
    forall(
        "generated_graphs_are_analysable",
        |rng, _| (config(rng), rng.next_u64()),
        |(cfg, seed)| {
            // Every generated stable task must pass the full analysis without
            // panicking, and satisfy the stream-max == RTC theorem.
            let task = generate_drt(cfg, *seed);
            let beta = srtw_minplus::Curve::affine(Q::ZERO, Q::ONE);
            if long_run_utilization(&task) < Q::ONE {
                let s = srtw_core::structural_delay(&task, &beta).unwrap();
                let r = srtw_core::rtc_delay(&task, &beta).unwrap();
                assert_eq!(s.stream_bound, r.bound);
            }
        },
    );
}
