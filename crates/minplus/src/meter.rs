//! Cooperative analysis budgets.
//!
//! Structural delay analysis is exponential in the worst case, and the
//! exact curve algebra can materialize huge horizons (lcm of coprime
//! periods). A [`Budget`] caps the resources an analysis may spend — wall
//! clock, explored abstract paths, and generated curve segments — and a
//! [`BudgetMeter`] is threaded through the hot loops (path exploration
//! dominance pruning, busy-window iteration, finitary convolution), which
//! *cooperatively* poll it.
//!
//! Exhaustion is not an error at this layer: a meter merely *trips* and
//! every subsequent `tick_*` returns `false`, letting the enclosing loop
//! stop at a clean prefix. The analysis layers (`srtw-workload`,
//! `srtw-core`) translate a tripped meter into a **sound degradation** —
//! truncating the abstraction horizon, which is provably monotone — and
//! record what happened; see the `Degradation` report type in `srtw-core`.
//!
//! Metering is designed to be cheap on the unconstrained hot path: a tick
//! is one counter increment plus a compare, and the wall clock is sampled
//! only every [`CLOCK_STRIDE`] ticks.

use crate::error::ArithmeticError;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many ticks pass between wall-clock samples. `Instant::now()` is a
/// syscall-ish operation; amortizing it keeps metering overhead below a
/// few percent even in the tightest loops.
pub const CLOCK_STRIDE: u32 = 256;

/// A shared cancellation flag for hard (watchdog-enforced) deadlines.
///
/// A supervisor holds one clone and the analysis' [`BudgetMeter`] another;
/// when the supervisor calls [`CancelToken::cancel`] the meter trips with
/// [`BudgetKind::Cancelled`] at its very next metered operation — every
/// hot loop the meter instruments polls the flag, so cancellation is
/// prompt even where wall-clock checks are stride-amortized. A tripped
/// meter degrades exactly like a wall-clock trip: the analysis winds down
/// at a clean prefix and reports a sound, degraded bound.
///
/// # Examples
///
/// ```
/// use srtw_minplus::{Budget, BudgetKind, BudgetMeter, CancelToken};
/// let token = CancelToken::new();
/// let meter = BudgetMeter::new(&Budget::default().with_cancel(token.clone()));
/// assert!(meter.tick_path());
/// token.cancel();
/// assert!(!meter.tick_path());
/// assert_eq!(meter.tripped(), Some(BudgetKind::Cancelled));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// `true` once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Tokens compare by identity: two tokens are equal iff they share the
/// same underlying flag.
impl PartialEq for CancelToken {
    fn eq(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for CancelToken {}

/// What a [`FaultPlan`] does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Trip the meter as if a starved wall-clock poll had fired
    /// ([`BudgetKind::WallClock`]): exercises the cooperative degradation
    /// path at an arbitrary point of the analysis.
    TripBudget,
    /// Mark the meter poisoned with a synthetic
    /// [`ArithmeticError::Overflow`]; the analysis entry points surface it
    /// as a typed error, exercising the retry ladder's failure path.
    Overflow,
    /// Skew the meter's view of the wall clock forward by this many
    /// milliseconds, as if the clock had jumped: an armed wall-clock
    /// deadline then fires early (a meter without a deadline ignores the
    /// jump).
    ClockJump(u64),
    /// Panic at the firing op, simulating a latent bug in the analysis
    /// itself rather than resource exhaustion. This exercises the crash
    /// *containment* paths (supervisor `catch_unwind`, the service's
    /// per-request isolation) deterministically — the panic always lands
    /// on the same metered operation.
    Panic,
}

impl FaultKind {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::TripBudget => "trip",
            FaultKind::Overflow => "overflow",
            FaultKind::ClockJump(_) => "clockjump",
            FaultKind::Panic => "panic",
        }
    }
}

/// A deterministic fault to inject into one metered analysis run.
///
/// The meter counts every metered operation (path tick, segment tick,
/// explicit wall poll); when the count reaches `at_op` the fault fires
/// once. Because the operation sequence of an analysis is deterministic,
/// a `(at_op, kind)` pair reproduces the exact same failure point on
/// every run — which is what lets seeded tests drive every rung of a
/// retry/degrade ladder and assert soundness under failure at arbitrary
/// points.
///
/// # Examples
///
/// ```
/// use srtw_minplus::{Budget, BudgetMeter, FaultKind, FaultPlan};
/// let plan = FaultPlan::new(3, FaultKind::Overflow);
/// let meter = BudgetMeter::new(&Budget::default().with_fault(plan));
/// assert!(meter.tick_path());
/// assert!(meter.tick_path());
/// assert!(!meter.tick_path()); // third metered op: fault fires, loop winds down
/// assert!(meter.injected_overflow().is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// 1-based index of the metered operation the fault fires at.
    pub at_op: u64,
    /// What happens when it fires.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// A fault of `kind` firing at the `at_op`-th metered operation
    /// (1-based; 0 is clamped to 1).
    pub fn new(at_op: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            at_op: at_op.max(1),
            kind,
        }
    }

    /// A pseudo-random plan derived from `seed` (SplitMix64 mixing): the
    /// firing op is spread over `[1, max_op]` and the kind cycles through
    /// the three *recoverable* faults (never [`FaultKind::Panic`], which
    /// would abort a seeded soundness sweep instead of degrading it).
    /// Deterministic in `seed`.
    pub fn seeded(seed: u64, max_op: u64) -> FaultPlan {
        let mix = |mut z: u64| {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let a = mix(seed);
        let b = mix(a);
        let at_op = 1 + a % max_op.max(1);
        let kind = match b % 3 {
            0 => FaultKind::TripBudget,
            1 => FaultKind::Overflow,
            _ => FaultKind::ClockJump(1 + (b >> 2) % 10_000),
        };
        FaultPlan::new(at_op, kind)
    }

    /// Parses a testing-only fault spec: `trip@N`, `overflow@N`,
    /// `clockjump@N:MS`, or `panic@N` (fire at the N-th metered
    /// operation).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let bad =
            || format!("bad fault spec '{spec}' (trip@N | overflow@N | clockjump@N:MS | panic@N)");
        let (kind, rest) = spec.split_once('@').ok_or_else(bad)?;
        match kind {
            "trip" => Ok(FaultPlan::new(
                rest.parse().map_err(|_| bad())?,
                FaultKind::TripBudget,
            )),
            "overflow" => Ok(FaultPlan::new(
                rest.parse().map_err(|_| bad())?,
                FaultKind::Overflow,
            )),
            "panic" => Ok(FaultPlan::new(
                rest.parse().map_err(|_| bad())?,
                FaultKind::Panic,
            )),
            "clockjump" => {
                let (at, ms) = rest.split_once(':').ok_or_else(bad)?;
                Ok(FaultPlan::new(
                    at.parse().map_err(|_| bad())?,
                    FaultKind::ClockJump(ms.parse().map_err(|_| bad())?),
                ))
            }
            _ => Err(bad()),
        }
    }
}

/// Resource limits for one analysis invocation.
///
/// The default budget is unlimited in every dimension, so budgeted entry
/// points behave exactly like their classic counterparts unless a cap is
/// set.
///
/// # Examples
///
/// ```
/// use srtw_minplus::Budget;
/// let b = Budget::default().with_wall_ms(1_000).with_max_paths(50_000);
/// assert!(!b.is_unlimited());
/// assert!(Budget::default().is_unlimited());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Budget {
    /// Wall-clock limit for the whole invocation.
    pub wall: Option<Duration>,
    /// Maximum number of abstract path tuples explored (heap pops plus
    /// busy-window iterations).
    pub max_paths: Option<u64>,
    /// Maximum number of curve segments generated by the (min,+) algebra.
    pub max_segments: Option<u64>,
    /// An external hard-cancellation flag (e.g. a supervisor's watchdog);
    /// polled on every metered operation, trips as
    /// [`BudgetKind::Cancelled`].
    pub cancel: Option<CancelToken>,
    /// A deterministic fault to inject (testing the failure paths).
    pub fault: Option<FaultPlan>,
}

impl Budget {
    /// The unlimited budget (same as [`Budget::default`]).
    pub const UNLIMITED: Budget = Budget {
        wall: None,
        max_paths: None,
        max_segments: None,
        cancel: None,
        fault: None,
    };

    /// A budget limited only by wall-clock time.
    pub fn wall_ms(ms: u64) -> Budget {
        Budget::default().with_wall_ms(ms)
    }

    /// Sets the wall-clock limit in milliseconds.
    #[must_use]
    pub fn with_wall_ms(mut self, ms: u64) -> Budget {
        self.wall = Some(Duration::from_millis(ms));
        self
    }

    /// Sets the explored-paths cap.
    #[must_use]
    pub fn with_max_paths(mut self, n: u64) -> Budget {
        self.max_paths = Some(n);
        self
    }

    /// Sets the curve-segment cap.
    #[must_use]
    pub fn with_max_segments(mut self, n: u64) -> Budget {
        self.max_segments = Some(n);
        self
    }

    /// Attaches a hard-cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.cancel = Some(token);
        self
    }

    /// Attaches a deterministic fault-injection plan.
    #[must_use]
    pub fn with_fault(mut self, plan: FaultPlan) -> Budget {
        self.fault = Some(plan);
        self
    }

    /// `true` when no cap, cancellation token or fault plan constrains the
    /// budget — the meter then skips all bookkeeping.
    pub fn is_unlimited(&self) -> bool {
        self.wall.is_none()
            && self.max_paths.is_none()
            && self.max_segments.is_none()
            && self.cancel.is_none()
            && self.fault.is_none()
    }
}

/// Which budget dimension tripped first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// The wall-clock deadline passed.
    WallClock,
    /// The explored-paths cap was reached.
    Paths,
    /// The curve-segment cap was reached.
    Segments,
    /// An external [`CancelToken`] was raised (hard watchdog deadline).
    Cancelled,
}

impl BudgetKind {
    /// Stable machine-readable name (used in JSON reports).
    pub fn as_str(self) -> &'static str {
        match self {
            BudgetKind::WallClock => "wall_clock",
            BudgetKind::Paths => "paths",
            BudgetKind::Segments => "segments",
            BudgetKind::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::WallClock => write!(f, "wall-clock deadline"),
            BudgetKind::Paths => write!(f, "explored-paths cap"),
            BudgetKind::Segments => write!(f, "curve-segment cap"),
            BudgetKind::Cancelled => write!(f, "hard cancellation"),
        }
    }
}

/// The live counters of one budgeted invocation.
///
/// A meter is shared by reference across every phase of an analysis
/// (rbf materialization, busy-window fixpoint, path exploration, curve
/// algebra) so the caps apply to the invocation as a whole. The counters
/// are shared atomics, so one meter can also be shared across the worker
/// shards of the parallel exploration engine (`&BudgetMeter` is `Sync`):
/// budgets, cancellation, and injected faults keep their single-threaded
/// semantics because every *deterministically ordered* tick is issued by
/// the sequential coordinator spine, while workers only observe the
/// already-tripped state.
///
/// Once any dimension trips the meter stays tripped: every later tick
/// returns `false` immediately, so all phases wind down at their next
/// poll. The first trip wins — concurrent observers can never overwrite
/// the recorded [`BudgetKind`].
#[derive(Debug)]
pub struct BudgetMeter {
    deadline: Option<Instant>,
    max_paths: u64,
    max_segments: u64,
    paths: AtomicU64,
    segments: AtomicU64,
    ticks_to_clock: AtomicU32,
    /// `0` = not tripped; otherwise `BudgetKind` encoded as `1 + discriminant`
    /// (see `trip` / `decode_kind`). First writer wins via compare-exchange.
    tripped: AtomicU8,
    metered: bool,
    cancel: Option<CancelToken>,
    fault: Option<FaultPlan>,
    /// Metered operations seen so far (counted only under a fault plan).
    ops: AtomicU64,
    /// A synthetic overflow injected by the fault plan, not yet surfaced.
    overflow: AtomicBool,
    /// Forward skew applied to the meter's view of the wall clock
    /// (accumulated by [`FaultKind::ClockJump`]), in milliseconds.
    skew_ms: AtomicU64,
}

/// Encoding of `Option<BudgetKind>` in the `tripped` atomic.
const fn encode_kind(kind: BudgetKind) -> u8 {
    match kind {
        BudgetKind::WallClock => 1,
        BudgetKind::Paths => 2,
        BudgetKind::Segments => 3,
        BudgetKind::Cancelled => 4,
    }
}

fn decode_kind(code: u8) -> Option<BudgetKind> {
    match code {
        1 => Some(BudgetKind::WallClock),
        2 => Some(BudgetKind::Paths),
        3 => Some(BudgetKind::Segments),
        4 => Some(BudgetKind::Cancelled),
        _ => None,
    }
}

impl BudgetMeter {
    /// Starts a meter for `budget`; the wall clock starts now.
    pub fn new(budget: &Budget) -> BudgetMeter {
        BudgetMeter {
            deadline: budget.wall.map(|d| Instant::now() + d),
            max_paths: budget.max_paths.unwrap_or(u64::MAX),
            max_segments: budget.max_segments.unwrap_or(u64::MAX),
            paths: AtomicU64::new(0),
            segments: AtomicU64::new(0),
            ticks_to_clock: AtomicU32::new(CLOCK_STRIDE),
            tripped: AtomicU8::new(0),
            metered: !budget.is_unlimited(),
            cancel: budget.cancel.clone(),
            fault: budget.fault,
            ops: AtomicU64::new(0),
            overflow: AtomicBool::new(false),
            skew_ms: AtomicU64::new(0),
        }
    }

    /// Records the first trip; later trips (including concurrent ones) are
    /// ignored so the reported [`BudgetKind`] is always the original cause.
    #[inline]
    fn trip(&self, kind: BudgetKind) {
        let _ = self.tripped.compare_exchange(
            0,
            encode_kind(kind),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// A meter that never trips (and skips all bookkeeping).
    pub fn unlimited() -> BudgetMeter {
        BudgetMeter::new(&Budget::UNLIMITED)
    }

    /// Records one explored path tuple. Returns `false` once the budget is
    /// exhausted — the caller should stop at a clean prefix.
    #[inline]
    pub fn tick_path(&self) -> bool {
        if !self.metered {
            return true;
        }
        if self.tripped().is_some() {
            return false;
        }
        if !self.note_op() {
            return false;
        }
        let n = self.paths.fetch_add(1, Ordering::Relaxed) + 1;
        if n > self.max_paths {
            self.trip(BudgetKind::Paths);
            return false;
        }
        self.poll_clock()
    }

    /// Records one generated curve segment. Returns `false` once the
    /// budget is exhausted.
    #[inline]
    pub fn tick_segment(&self) -> bool {
        if !self.metered {
            return true;
        }
        if self.tripped().is_some() {
            return false;
        }
        if !self.note_op() {
            return false;
        }
        let n = self.segments.fetch_add(1, Ordering::Relaxed) + 1;
        if n > self.max_segments {
            self.trip(BudgetKind::Segments);
            return false;
        }
        self.poll_clock()
    }

    /// Forces a wall-clock check (used at loop boundaries where many ticks
    /// may pass between polls). Returns `false` once exhausted.
    pub fn check_wall(&self) -> bool {
        if !self.metered {
            return true;
        }
        if self.tripped().is_some() {
            return false;
        }
        if !self.note_op() {
            return false;
        }
        if let Some(d) = self.deadline {
            let skew = Duration::from_millis(self.skew_ms.load(Ordering::Relaxed));
            if Instant::now() + skew >= d {
                self.trip(BudgetKind::WallClock);
                return false;
            }
        }
        true
    }

    /// Polls the cancellation flag and advances the fault plan; every
    /// metered operation funnels through here, which is what makes
    /// cancellation prompt and injected faults deterministic. Returns
    /// `false` when the operation tripped the meter.
    #[inline]
    fn note_op(&self) -> bool {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                self.trip(BudgetKind::Cancelled);
                return false;
            }
        }
        if let Some(f) = self.fault {
            // The exact-increment observation is race-free: even with
            // concurrent tickers only one thread sees `n == at_op`, so the
            // fault still fires exactly once.
            let n = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
            if n == f.at_op {
                match f.kind {
                    FaultKind::TripBudget => {
                        self.trip(BudgetKind::WallClock);
                        return false;
                    }
                    FaultKind::Overflow => {
                        // Poison *and* trip: the analysis winds down at its
                        // next poll instead of spending the full effort on a
                        // result the poisoned meter will discard, and the
                        // entry point surfaces the typed overflow.
                        self.overflow.store(true, Ordering::Relaxed);
                        self.trip(BudgetKind::WallClock);
                        return false;
                    }
                    FaultKind::ClockJump(ms) => {
                        self.skew_ms.fetch_add(ms, Ordering::Relaxed);
                    }
                    FaultKind::Panic => {
                        panic!("injected fault: panic at metered op {n}");
                    }
                }
            }
        }
        true
    }

    /// The synthetic overflow injected by the fault plan, if it has fired.
    /// Analysis entry points surface it as their typed arithmetic error.
    pub fn injected_overflow(&self) -> Option<ArithmeticError> {
        if self.overflow.load(Ordering::Relaxed) {
            Some(ArithmeticError::Overflow)
        } else {
            None
        }
    }

    #[inline]
    fn poll_clock(&self) -> bool {
        // `fetch_sub` may transiently wrap under concurrent tickers; any
        // observation `≤ 1` resets the stride and samples the clock, which
        // at worst polls the wall slightly more often than every stride.
        let left = self.ticks_to_clock.fetch_sub(1, Ordering::Relaxed);
        if left > 1 {
            return true;
        }
        self.ticks_to_clock.store(CLOCK_STRIDE, Ordering::Relaxed);
        self.check_wall()
    }

    /// The dimension that tripped, if any.
    pub fn tripped(&self) -> Option<BudgetKind> {
        decode_kind(self.tripped.load(Ordering::Relaxed))
    }

    /// `true` while no dimension has tripped.
    pub fn within(&self) -> bool {
        self.tripped().is_none()
    }

    /// Paths ticked so far.
    pub fn paths_used(&self) -> u64 {
        self.paths.load(Ordering::Relaxed)
    }

    /// Segments ticked so far.
    pub fn segments_used(&self) -> u64 {
        self.segments.load(Ordering::Relaxed)
    }

    /// `true` when any cap is actually being enforced.
    pub fn is_metered(&self) -> bool {
        self.metered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let m = BudgetMeter::unlimited();
        for _ in 0..10_000 {
            assert!(m.tick_path());
            assert!(m.tick_segment());
        }
        assert!(m.within());
        assert_eq!(m.tripped(), None);
        // Unlimited meters skip bookkeeping entirely.
        assert_eq!(m.paths_used(), 0);
    }

    #[test]
    fn path_cap_trips_and_stays_tripped() {
        let m = BudgetMeter::new(&Budget::default().with_max_paths(10));
        for _ in 0..10 {
            assert!(m.tick_path());
        }
        assert!(!m.tick_path());
        assert_eq!(m.tripped(), Some(BudgetKind::Paths));
        // Other dimensions also refuse once tripped.
        assert!(!m.tick_segment());
        assert!(!m.check_wall());
    }

    #[test]
    fn segment_cap_trips() {
        let m = BudgetMeter::new(&Budget::default().with_max_segments(3));
        assert!(m.tick_segment());
        assert!(m.tick_segment());
        assert!(m.tick_segment());
        assert!(!m.tick_segment());
        assert_eq!(m.tripped(), Some(BudgetKind::Segments));
    }

    #[test]
    fn zero_wall_budget_trips_on_first_poll() {
        let m = BudgetMeter::new(&Budget::wall_ms(0));
        assert!(!m.check_wall());
        assert_eq!(m.tripped(), Some(BudgetKind::WallClock));
    }

    #[test]
    fn wall_clock_polled_within_stride() {
        let m = BudgetMeter::new(&Budget::wall_ms(0));
        // Ticks eventually sample the clock even without check_wall.
        let mut ok = true;
        for _ in 0..=CLOCK_STRIDE {
            ok = m.tick_path();
        }
        assert!(!ok);
        assert_eq!(m.tripped(), Some(BudgetKind::WallClock));
    }

    #[test]
    fn cancellation_trips_promptly_and_stays_tripped() {
        let token = CancelToken::new();
        let m = BudgetMeter::new(&Budget::default().with_cancel(token.clone()));
        assert!(m.is_metered(), "a cancel token alone must arm the meter");
        for _ in 0..100 {
            assert!(m.tick_path());
            assert!(m.tick_segment());
            assert!(m.check_wall());
        }
        token.cancel();
        // The very next metered operation observes the flag.
        assert!(!m.tick_path());
        assert_eq!(m.tripped(), Some(BudgetKind::Cancelled));
        assert!(!m.tick_segment());
        assert!(!m.check_wall());
    }

    #[test]
    fn cancellation_from_another_thread() {
        let token = CancelToken::new();
        let remote = token.clone();
        let handle = std::thread::spawn(move || remote.cancel());
        handle.join().unwrap();
        let m = BudgetMeter::new(&Budget::default().with_cancel(token));
        assert!(!m.check_wall());
        assert_eq!(m.tripped(), Some(BudgetKind::Cancelled));
    }

    #[test]
    fn cancel_tokens_compare_by_identity() {
        let a = CancelToken::new();
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, CancelToken::new());
    }

    #[test]
    fn fault_trip_fires_at_exact_op() {
        let m = BudgetMeter::new(
            &Budget::default().with_fault(FaultPlan::new(3, FaultKind::TripBudget)),
        );
        assert!(m.tick_path());
        assert!(m.tick_segment());
        assert!(!m.tick_path(), "third metered op must trip");
        assert_eq!(m.tripped(), Some(BudgetKind::WallClock));
    }

    #[test]
    fn fault_overflow_poisons_and_trips() {
        let m = BudgetMeter::new(
            &Budget::default().with_fault(FaultPlan::new(2, FaultKind::Overflow)),
        );
        assert!(m.tick_path());
        assert!(m.injected_overflow().is_none());
        assert!(!m.tick_path(), "overflow injection winds the loop down");
        assert!(m.injected_overflow().is_some());
        assert!(!m.within(), "the poisoned meter is also tripped");
    }

    #[test]
    fn fault_clock_jump_expires_an_armed_deadline() {
        // A generous 1-hour wall budget, but the injected jump skips the
        // clock far past it.
        let plan = FaultPlan::new(1, FaultKind::ClockJump(2 * 3_600_000));
        let m = BudgetMeter::new(&Budget::wall_ms(3_600_000).with_fault(plan));
        assert!(m.tick_path(), "the jump itself lands on op 1");
        assert!(!m.check_wall(), "skewed clock is past the deadline");
        assert_eq!(m.tripped(), Some(BudgetKind::WallClock));
    }

    #[test]
    fn fault_clock_jump_without_deadline_is_inert() {
        let plan = FaultPlan::new(1, FaultKind::ClockJump(u64::MAX >> 12));
        let m = BudgetMeter::new(&Budget::default().with_fault(plan));
        for _ in 0..1000 {
            assert!(m.tick_path());
        }
        assert!(m.within());
    }

    #[test]
    fn fault_panic_fires_at_exact_op_and_is_catchable() {
        let m = BudgetMeter::new(&Budget::default().with_fault(FaultPlan::new(3, FaultKind::Panic)));
        assert!(m.tick_path());
        assert!(m.tick_segment());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.tick_path()));
        let payload = caught.expect_err("third metered op must panic");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("injected fault: panic at metered op 3"), "{msg}");
    }

    #[test]
    fn seeded_fault_plans_are_deterministic_and_in_range() {
        for seed in 0..200u64 {
            let a = FaultPlan::seeded(seed, 50);
            let b = FaultPlan::seeded(seed, 50);
            assert_eq!(a, b);
            assert!((1..=50).contains(&a.at_op), "op {} out of range", a.at_op);
        }
        // All three kinds appear over a modest seed sweep.
        let kinds: Vec<&str> = (0..64)
            .map(|s| FaultPlan::seeded(s, 50).kind.as_str())
            .collect();
        for want in ["trip", "overflow", "clockjump"] {
            assert!(kinds.contains(&want), "kind {want} never generated");
        }
    }

    #[test]
    fn fault_spec_parsing() {
        assert_eq!(
            FaultPlan::parse("trip@7"),
            Ok(FaultPlan::new(7, FaultKind::TripBudget))
        );
        assert_eq!(
            FaultPlan::parse("overflow@123"),
            Ok(FaultPlan::new(123, FaultKind::Overflow))
        );
        assert_eq!(
            FaultPlan::parse("clockjump@5:9000"),
            Ok(FaultPlan::new(5, FaultKind::ClockJump(9000)))
        );
        assert_eq!(
            FaultPlan::parse("panic@9"),
            Ok(FaultPlan::new(9, FaultKind::Panic))
        );
        for bad in [
            "", "trip", "trip@x", "meteor@3", "clockjump@5", "overflow@", "panic@",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' must be rejected");
        }
    }

    #[test]
    fn meter_is_sync_and_shareable_by_reference() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<BudgetMeter>();
        assert_sync::<&BudgetMeter>();
    }

    #[test]
    fn concurrent_ticks_trip_exactly_at_the_cap() {
        // 4 threads hammer a shared meter; the paths counter must be exact
        // and the first trip must win (always BudgetKind::Paths here).
        let m = BudgetMeter::new(&Budget::default().with_max_paths(1_000));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..500 {
                        m.tick_path();
                    }
                });
            }
        });
        assert_eq!(m.tripped(), Some(BudgetKind::Paths));
        // Every successful tick incremented the counter exactly once; the
        // counter may exceed the cap by at most the number of threads that
        // raced past the check, and is at least cap + 1 (the tripping tick).
        assert!(m.paths_used() > 1_000);
        assert!(m.paths_used() <= 2_000);
    }

    #[test]
    fn concurrent_fault_fires_exactly_once() {
        let m = BudgetMeter::new(
            &Budget::default().with_fault(FaultPlan::new(100, FaultKind::Overflow)),
        );
        let failures: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| (0..50).filter(|_| !m.tick_path()).count()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // Op 100 fires the overflow; subsequent ticks all refuse.
        assert!(failures >= 1);
        assert!(m.injected_overflow().is_some());
        assert_eq!(m.tripped(), Some(BudgetKind::WallClock));
    }

    #[test]
    fn budget_builders() {
        let b = Budget::wall_ms(5).with_max_paths(1).with_max_segments(2);
        assert_eq!(b.wall, Some(Duration::from_millis(5)));
        assert_eq!(b.max_paths, Some(1));
        assert_eq!(b.max_segments, Some(2));
        assert_eq!(BudgetKind::Paths.as_str(), "paths");
        assert_eq!(format!("{}", BudgetKind::WallClock), "wall-clock deadline");
    }
}
