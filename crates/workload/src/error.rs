//! Error types for workload-model construction and analysis.

use srtw_minplus::Q;
use std::fmt;

/// Errors produced when building or analysing workload models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A task graph must contain at least one vertex.
    EmptyGraph,
    /// Vertex WCETs must be strictly positive.
    NonPositiveWcet {
        /// Offending vertex index.
        vertex: usize,
        /// The offending WCET.
        wcet: Q,
    },
    /// Edge separations must be strictly positive.
    NonPositiveSeparation {
        /// Source vertex index.
        from: usize,
        /// Target vertex index.
        to: usize,
        /// The offending separation.
        separation: Q,
    },
    /// An edge references a vertex that does not exist.
    UnknownVertex {
        /// The out-of-range index.
        index: usize,
    },
    /// A relative deadline must be strictly positive.
    NonPositiveDeadline {
        /// Offending vertex index.
        vertex: usize,
        /// The offending deadline.
        deadline: Q,
    },
    /// A duplicate edge between the same pair of vertices.
    DuplicateEdge {
        /// Source vertex index.
        from: usize,
        /// Target vertex index.
        to: usize,
    },
    /// A classical model parameter is invalid (e.g. zero period).
    InvalidParameter {
        /// Human-readable description.
        reason: &'static str,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::EmptyGraph => write!(f, "task graph must contain at least one vertex"),
            WorkloadError::NonPositiveWcet { vertex, wcet } => {
                write!(f, "vertex {vertex} has non-positive WCET {wcet}")
            }
            WorkloadError::NonPositiveSeparation {
                from,
                to,
                separation,
            } => write!(
                f,
                "edge {from} -> {to} has non-positive separation {separation}"
            ),
            WorkloadError::UnknownVertex { index } => {
                write!(f, "edge references unknown vertex {index}")
            }
            WorkloadError::NonPositiveDeadline { vertex, deadline } => {
                write!(f, "vertex {vertex} has non-positive deadline {deadline}")
            }
            WorkloadError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from} -> {to}")
            }
            WorkloadError::InvalidParameter { reason } => {
                write!(f, "invalid model parameter: {reason}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}
