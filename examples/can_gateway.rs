//! A CAN-style gateway multiplexing three structural message streams FIFO
//! onto one link.
//!
//! ```text
//! cargo run --example can_gateway
//! ```
//!
//! Three electronic control units forward message bursts through a shared
//! gateway. Each stream is a digraph task (burst/steady patterns); the
//! link serves FIFO. The per-stream structural analysis keeps the analysed
//! stream's structure exact while abstracting the competitors — and is
//! validated against randomized simulations on the concrete link.

use srtw::{
    earliest_random_walk, fifo_rtc, fifo_structural, simulate_fifo, AnalysisConfig, Curve,
    DrtTask, DrtTaskBuilder, Q, ServiceProcess,
};

fn engine_ecu() -> DrtTask {
    // Bursty: a 3-message burst, then quiet.
    let mut b = DrtTaskBuilder::new("engine");
    let burst1 = b.vertex("burst1", Q::int(2));
    let burst2 = b.vertex("burst2", Q::int(2));
    let burst3 = b.vertex("burst3", Q::int(2));
    let quiet = b.vertex("quiet", Q::ONE);
    b.edge(burst1, burst2, Q::int(4));
    b.edge(burst2, burst3, Q::int(4));
    b.edge(burst3, quiet, Q::int(20));
    b.edge(quiet, burst1, Q::int(20));
    b.build().expect("valid engine graph")
}

fn chassis_ecu() -> DrtTask {
    // Periodic with a rare heavy diagnostic frame.
    let mut b = DrtTaskBuilder::new("chassis");
    let normal = b.vertex("normal", Q::ONE);
    let diag = b.vertex("diag", Q::int(4));
    b.edge(normal, normal, Q::int(10));
    b.edge(normal, diag, Q::int(50));
    b.edge(diag, normal, Q::int(10));
    b.build().expect("valid chassis graph")
}

fn infotainment_ecu() -> DrtTask {
    // Light periodic traffic.
    let mut b = DrtTaskBuilder::new("infotainment");
    let v = b.vertex("frame", Q::ONE);
    b.edge(v, v, Q::int(25));
    b.build().expect("valid infotainment graph")
}

fn main() {
    let tasks = vec![engine_ecu(), chassis_ecu(), infotainment_ecu()];
    let beta = Curve::rate_latency(Q::ONE, Q::int(2)); // link with arbitration latency

    let per_stream =
        fifo_structural(&tasks, &beta, &AnalysisConfig::default()).expect("stable gateway");
    let baseline = fifo_rtc(&tasks, &beta).expect("stable gateway");

    println!("FIFO gateway: RTC baseline bound (any stream, any message): {baseline}\n");
    for a in &per_stream {
        println!("{a}\n");
    }

    // Every structural bound refines the stream-agnostic baseline.
    for a in &per_stream {
        for vb in &a.per_vertex {
            assert!(vb.bound <= baseline.bound);
        }
    }

    // Simulation: random legal traffic from all three ECUs on the concrete
    // link (fluid unit rate dominates the rate-latency lower bound).
    let mut worst = Q::ZERO;
    for seed in 0..60 {
        let traces: Vec<_> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| earliest_random_walk(t, Q::int(300), None, seed * 31 + i as u64))
            .collect();
        let out = simulate_fifo(&tasks, &traces, &ServiceProcess::fluid(Q::ONE));
        for (si, task) in tasks.iter().enumerate() {
            for v in task.vertex_ids() {
                let observed = out.max_delay_of(si, v);
                let bound = per_stream[si].bound_of(v);
                assert!(
                    observed <= bound,
                    "stream {si} vertex {v}: simulated {observed} exceeds bound {bound}"
                );
            }
        }
        worst = worst.max(out.max_delay());
    }
    println!("worst simulated message delay over 60 random runs: {worst}");
    println!("(every observation stayed below its structural per-type bound)");
}
