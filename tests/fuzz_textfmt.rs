//! Seeded fuzz smoke test for the hardened system-file parser.
//!
//! Random byte-level mutations of the real example systems (bit flips,
//! splices, truncations, duplications, and pure noise) are fed to
//! [`srtw::textfmt::parse_system`]. Two invariants:
//!
//! 1. the parser never panics — every mutation yields `Ok` or a typed
//!    [`srtw::textfmt::ParseError`];
//! 2. every error carries a 1-based line/column span.
//!
//! Case counts follow `SRTW_PROP_CASES` (default 64); failures print a
//! `SRTW_PROP_REPLAY=<seed>:<size>` handle for exact reproduction.

use srtw::prop::forall;
use srtw::textfmt::parse_system;
use srtw::Rng;

const SEEDS: [&str; 2] = [
    include_str!("../systems/decoder.srtw"),
    include_str!("../systems/adversarial.srtw"),
];

/// One seeded mutation of a real corpus file (or, occasionally, pure
/// random bytes), decoded lossily so the parser always sees valid UTF-8.
fn mutated(rng: &mut Rng, size: u32) -> String {
    let mut bytes = SEEDS[rng.random_range(0usize..SEEDS.len())]
        .as_bytes()
        .to_vec();
    let mutations = 1 + (size as usize) / 4;
    for _ in 0..mutations {
        match rng.random_range(0u32..5) {
            // Flip a random byte.
            0 if !bytes.is_empty() => {
                let i = rng.random_range(0usize..bytes.len());
                bytes[i] = rng.next_u64() as u8;
            }
            // Insert a random printable-ish chunk.
            1 => {
                let i = rng.random_range(0usize..bytes.len() + 1);
                let chunk: Vec<u8> = (0..rng.random_range(1usize..8))
                    .map(|_| (rng.next_u64() % 96 + 32) as u8)
                    .collect();
                bytes.splice(i..i, chunk);
            }
            // Truncate at a random point.
            2 if !bytes.is_empty() => {
                let i = rng.random_range(0usize..bytes.len());
                bytes.truncate(i);
            }
            // Duplicate a random slice (duplicate keys, tasks, servers…).
            3 if bytes.len() >= 2 => {
                let a = rng.random_range(0usize..bytes.len() - 1);
                let b = rng.random_range(a + 1..bytes.len());
                let slice = bytes[a..b].to_vec();
                let i = rng.random_range(0usize..bytes.len() + 1);
                bytes.splice(i..i, slice);
            }
            // Replace everything with noise.
            _ => {
                bytes = (0..rng.random_range(0usize..256))
                    .map(|_| rng.next_u64() as u8)
                    .collect();
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn mutated_inputs_never_panic_and_errors_carry_spans() {
    forall("fuzz_textfmt", mutated, |text| {
        match parse_system(text) {
            Ok(sys) => {
                // A surviving parse is a real system: render-independent
                // sanity only, the analysis itself is covered elsewhere.
                assert!(!sys.tasks.is_empty());
            }
            Err(e) => {
                assert!(
                    e.line >= 1 && e.column >= 1,
                    "error without a span: {e:?}"
                );
                // The rendered form exposes the span.
                let shown = e.to_string();
                assert!(shown.starts_with(&format!("line {}:{}:", e.line, e.column)));
            }
        }
    });
}
