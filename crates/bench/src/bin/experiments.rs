//! Experiment runner: regenerates the evaluation tables and figures.
//!
//! ```text
//! cargo run -p srtw-bench --release --bin experiments -- all
//! cargo run -p srtw-bench --release --bin experiments -- e1 e5 --csv results/
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--csv" {
            match it.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--csv needs a directory");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            ids.push(a);
        }
    }
    if ids.is_empty() {
        eprintln!("usage: experiments <e1..e10|all> ... [--csv DIR]");
        return ExitCode::FAILURE;
    }
    for id in &ids {
        if !srtw_bench::run_experiment_to(id, csv_dir.as_deref()) {
            eprintln!("unknown experiment id: {id}");
            return ExitCode::FAILURE;
        }
        println!();
    }
    ExitCode::SUCCESS
}
