//! The FIFO analysis document shared by `srtw analyze --json` and
//! `POST /analyze`.
//!
//! Both entry points must emit **byte-identical** JSON for the same
//! system (the soak suite asserts it), so the document is built in
//! exactly one place: the CLI calls [`fifo_report`] + [`FifoReport::to_json`]
//! and so does the service worker.

use srtw_core::{
    fifo_rtc_with, fifo_structural, fifo_structural_with_memo, AnalysisConfig, AnalysisError,
    DelayAnalysis, Json, RtcReport,
};
use srtw_minplus::Curve;
use srtw_workload::{DrtTask, RbfMemo};

/// The FIFO analysis of one system: per-stream structural bounds plus the
/// stream-agnostic RTC baseline.
#[derive(Debug, Clone)]
pub struct FifoReport {
    /// Structural per-stream analyses, in task order.
    pub per: Vec<DelayAnalysis>,
    /// The RTC baseline over the same budget.
    pub rtc: RtcReport,
}

/// Runs the FIFO analysis under `cfg` (the RTC baseline shares
/// `cfg.budget`). The call order — structural first, RTC second — is part
/// of the determinism contract: budget trips and injected faults land on
/// the same metered operation whichever entry point runs the analysis.
pub fn fifo_report(
    tasks: &[DrtTask],
    beta: &Curve,
    cfg: &AnalysisConfig,
) -> Result<FifoReport, AnalysisError> {
    let per = fifo_structural(tasks, beta, cfg)?;
    let rtc = fifo_rtc_with(tasks, beta, &cfg.budget)?;
    Ok(FifoReport { per, rtc })
}

/// [`fifo_report`] reusing a caller-provided warm [`RbfMemo`].
///
/// On an unmetered budget the document is byte-identical to
/// [`fifo_report`] — the memo holds only exact rbfs, pure functions of
/// `(task, horizon)` — it is merely computed faster. Callers that meter
/// the run (wall deadlines, injected faults) should use [`fifo_report`]
/// instead: a warm memo skips exploration ticks, so degraded outputs
/// would not replay tick-for-tick.
pub fn fifo_report_with_memo(
    tasks: &[DrtTask],
    beta: &Curve,
    cfg: &AnalysisConfig,
    memo: &RbfMemo,
) -> Result<FifoReport, AnalysisError> {
    let per = fifo_structural_with_memo(tasks, beta, cfg, memo)?;
    let rtc = fifo_rtc_with(tasks, beta, &cfg.budget)?;
    Ok(FifoReport { per, rtc })
}

impl FifoReport {
    /// The sorted, deduplicated budget dimensions that tripped, with the
    /// CLI's historical quirk preserved: a degraded RTC baseline with no
    /// per-stream records reports as plain `"budget"`.
    pub fn degradation_kinds(&self) -> Vec<String> {
        let mut kinds: Vec<String> = self
            .per
            .iter()
            .flat_map(|a| a.degradations.iter().map(|d| d.tripped.to_string()))
            .collect();
        if !self.rtc.quality.is_exact() && kinds.is_empty() {
            kinds.push("budget".into());
        }
        kinds.sort();
        kinds.dedup();
        kinds
    }

    /// `true` when any stream or the baseline carries a degraded (still
    /// sound) bound.
    pub fn degraded(&self) -> bool {
        !self.degradation_kinds().is_empty()
    }

    /// The `srtw analyze --json` document (scheduler `fifo`).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("scheduler", Json::str("fifo")),
            ("degraded", Json::Bool(self.degraded())),
            ("rtc", self.rtc.to_json()),
            (
                "streams",
                Json::Array(self.per.iter().map(|a| a.to_json()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtw_minplus::{Budget, Q};
    use srtw_workload::DrtTaskBuilder;

    fn small_system() -> (Vec<DrtTask>, Curve) {
        let mut b = DrtTaskBuilder::new("t");
        let v = b.vertex("a", Q::int(2));
        b.edge(v, v, Q::int(8));
        (vec![b.build().unwrap()], Curve::affine(Q::ZERO, Q::ONE))
    }

    #[test]
    fn exact_report_is_not_degraded_and_renders_the_cli_document() {
        let (tasks, beta) = small_system();
        let r = fifo_report(&tasks, &beta, &AnalysisConfig::default()).unwrap();
        assert!(!r.degraded());
        assert!(r.degradation_kinds().is_empty());
        let doc = r.to_json().render();
        assert!(doc.starts_with("{\"scheduler\":\"fifo\",\"degraded\":false,\"rtc\":"));
        assert!(doc.contains("\"streams\":["));
    }

    #[test]
    fn tripped_budget_reports_degradation_kinds() {
        let (tasks, beta) = small_system();
        let cfg = AnalysisConfig {
            budget: Budget::default().with_max_paths(1),
            ..Default::default()
        };
        let r = fifo_report(&tasks, &beta, &cfg).unwrap();
        assert!(r.degraded());
        assert!(!r.degradation_kinds().is_empty());
        let doc = r.to_json().render();
        assert!(doc.contains("\"degraded\":true"));
    }
}
