//! Trace generators: concrete behaviours of digraph tasks.
//!
//! * [`earliest_random_walk`] — a random walk through the graph releasing
//!   every job as early as legally possible (the aggressive mode used to
//!   probe worst-case delays);
//! * [`lazy_random_walk`] — adds random slack between releases (exercises
//!   legality handling and gives the simulator benign behaviours);
//! * [`witness_trace`] — replays an analysis witness path at its minimum
//!   separations (the adversarial scenario the structural bound is
//!   calibrated to).

use srtw_detrand::Rng;
use srtw_minplus::Q;
use srtw_workload::{DrtTask, ReleaseTrace, VertexId};

/// Releases jobs along a uniformly random walk, each as early as legal,
/// starting from `start` (or a random vertex), until `horizon` is passed.
pub fn earliest_random_walk(
    task: &DrtTask,
    horizon: Q,
    start: Option<VertexId>,
    seed: u64,
) -> ReleaseTrace {
    random_walk(task, horizon, start, seed, false)
}

/// Like [`earliest_random_walk`] but inserts random extra slack (up to one
/// separation) before each release.
pub fn lazy_random_walk(
    task: &DrtTask,
    horizon: Q,
    start: Option<VertexId>,
    seed: u64,
) -> ReleaseTrace {
    random_walk(task, horizon, start, seed, true)
}

fn random_walk(
    task: &DrtTask,
    horizon: Q,
    start: Option<VertexId>,
    seed: u64,
    lazy: bool,
) -> ReleaseTrace {
    let mut rng = Rng::seed_from_u64(seed);
    let mut trace = ReleaseTrace::new();
    let mut v = match start {
        Some(v) => v,
        None => {
            let i = rng.random_range(0..task.num_vertices());
            task.vertex_ids().nth(i).expect("index in range")
        }
    };
    let mut t = Q::ZERO;
    trace.push(t, v);
    loop {
        let edges = task.out_edges(v);
        if edges.is_empty() {
            break;
        }
        let e = edges[rng.random_range(0..edges.len())];
        let mut next_t = t + e.separation;
        if lazy {
            // Up to one extra separation of slack, in quarter steps.
            let slack_quarters: i128 = rng.random_range(0i128..=4);
            next_t += e.separation * Q::new(slack_quarters, 4);
        }
        if next_t > horizon {
            break;
        }
        t = next_t;
        v = e.to;
        trace.push(t, v);
    }
    trace
}

/// Replays a vertex path at exactly the minimum separations (each release
/// as early as legal). The path must follow existing edges.
///
/// # Panics
///
/// Panics if consecutive vertices are not connected.
pub fn witness_trace(task: &DrtTask, path: &[VertexId]) -> ReleaseTrace {
    let mut trace = ReleaseTrace::new();
    let mut t = Q::ZERO;
    for (i, &v) in path.iter().enumerate() {
        if i > 0 {
            let prev = path[i - 1];
            let e = task
                .out_edges(prev)
                .iter()
                .find(|e| e.to == v)
                .expect("witness path must follow edges");
            t += e.separation;
        }
        trace.push(t, v);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtw_workload::DrtTaskBuilder;

    fn task() -> DrtTask {
        let mut b = DrtTaskBuilder::new("t");
        let a = b.vertex("a", Q::int(2));
        let c = b.vertex("b", Q::int(3));
        b.edge(a, c, Q::int(5));
        b.edge(c, a, Q::int(4));
        b.edge(a, a, Q::int(6));
        b.build().unwrap()
    }

    #[test]
    fn random_walks_are_legal() {
        let t = task();
        for seed in 0..50 {
            let tr = earliest_random_walk(&t, Q::int(100), None, seed);
            assert!(tr.is_legal(&t), "seed {seed} produced an illegal trace");
            assert!(!tr.is_empty());
            let lz = lazy_random_walk(&t, Q::int(100), None, seed);
            assert!(lz.is_legal(&t), "lazy seed {seed} illegal");
        }
    }

    #[test]
    fn walks_are_deterministic_per_seed() {
        let t = task();
        let a = earliest_random_walk(&t, Q::int(60), None, 7);
        let b = earliest_random_walk(&t, Q::int(60), None, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn walks_fill_the_horizon() {
        let t = task();
        let tr = earliest_random_walk(&t, Q::int(100), None, 3);
        // Max separation is 6, so the walk must reach at least 94.
        assert!(tr.end_time().unwrap() >= Q::int(94));
    }

    #[test]
    fn witness_replay() {
        let t = task();
        let ids: Vec<VertexId> = t.vertex_ids().collect();
        let tr = witness_trace(&t, &[ids[0], ids[1], ids[0]]);
        assert!(tr.is_legal(&t));
        assert_eq!(tr.releases()[1].time, Q::int(5));
        assert_eq!(tr.releases()[2].time, Q::int(9));
    }

    #[test]
    #[should_panic(expected = "follow edges")]
    fn witness_replay_checks_edges() {
        let t = task();
        let ids: Vec<VertexId> = t.vertex_ids().collect();
        // b -> b edge does not exist.
        let _ = witness_trace(&t, &[ids[1], ids[1]]);
    }
}
