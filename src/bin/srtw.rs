//! `srtw` — command-line front end for the structural delay analysis.
//!
//! ```text
//! srtw analyze  <system.srtw> [--scheduler fifo|fp|edf] [--json]
//! srtw rbf      <system.srtw> [--horizon H]
//! srtw dot      <system.srtw>
//! srtw simulate <system.srtw> [--seeds N] [--horizon H]
//! ```
//!
//! System files use the text format documented in [`srtw::textfmt`].
//! `--json` switches `analyze` to a machine-readable single-document
//! output (see [`srtw::Json`]).

use srtw::textfmt::{parse_system, SystemSpec};
use srtw::{
    earliest_random_walk, edf_schedulable, fifo_rtc, fifo_structural, fixed_priority_structural,
    simulate_fifo, AnalysisConfig, Curve, Json, Q, Rbf, ServiceProcess,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let usage = "usage: srtw <analyze|rbf|dot|simulate> <file> [options]";
    let cmd = args.first().ok_or(usage)?;
    let path = args.get(1).ok_or(usage)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let sys = parse_system(&text).map_err(|e| format!("{path}: {e}"))?;
    let opts = &args[2..];

    match cmd.as_str() {
        "analyze" => analyze(&sys, opts),
        "rbf" => rbf(&sys, opts),
        "dot" => {
            for t in &sys.tasks {
                print!("{}", t.to_dot());
            }
            Ok(())
        }
        "simulate" => simulate(&sys, opts),
        other => Err(format!("unknown command '{other}'\n{usage}")),
    }
}

fn opt_value(opts: &[String], key: &str) -> Option<String> {
    opts.iter()
        .position(|a| a == key)
        .and_then(|i| opts.get(i + 1))
        .cloned()
}

fn server_curve(sys: &SystemSpec) -> Result<Curve, String> {
    match &sys.server {
        Some(s) => s.beta_lower().map_err(|e| e.to_string()),
        None => Err("the system file declares no server (add a 'server …' line)".into()),
    }
}

fn analyze(sys: &SystemSpec, opts: &[String]) -> Result<(), String> {
    let beta = server_curve(sys)?;
    let scheduler = opt_value(opts, "--scheduler").unwrap_or_else(|| "fifo".into());
    let json = opts.iter().any(|a| a == "--json");
    match scheduler.as_str() {
        "fifo" => {
            let per = fifo_structural(&sys.tasks, &beta, &AnalysisConfig::default())
                .map_err(|e| e.to_string())?;
            let rtc = fifo_rtc(&sys.tasks, &beta).map_err(|e| e.to_string())?;
            if json {
                println!(
                    "{}",
                    Json::object(vec![
                        ("scheduler", Json::str("fifo")),
                        ("rtc", rtc.to_json()),
                        (
                            "streams",
                            Json::Array(per.iter().map(|a| a.to_json()).collect()),
                        ),
                    ])
                );
            } else {
                println!("scheduler: FIFO");
                println!("RTC baseline (stream-agnostic): {rtc}");
                for a in &per {
                    println!("\n{a}");
                }
            }
        }
        "fp" => {
            let per =
                fixed_priority_structural(&sys.tasks, &beta).map_err(|e| e.to_string())?;
            if json {
                println!(
                    "{}",
                    Json::object(vec![
                        ("scheduler", Json::str("fp")),
                        (
                            "streams",
                            Json::Array(per.iter().map(|a| a.to_json()).collect()),
                        ),
                    ])
                );
            } else {
                println!("scheduler: fixed priority (file order = priority order)");
                for (i, a) in per.iter().enumerate() {
                    println!("\npriority {i}:\n{a}");
                }
            }
        }
        "edf" => {
            let r = edf_schedulable(&sys.tasks, &beta).map_err(|e| e.to_string())?;
            if json {
                println!(
                    "{}",
                    Json::object(vec![
                        ("scheduler", Json::str("edf")),
                        ("report", r.to_json()),
                    ])
                );
            } else {
                println!("scheduler: EDF (processor-demand criterion)");
                println!(
                    "schedulable: {} (busy window ≤ {}, {} breakpoints)",
                    r.schedulable, r.busy_window, r.breakpoints
                );
                if let Some((t, demand, supply)) = r.violation {
                    println!("first violation: window {t}: demand {demand} > supply {supply}");
                }
            }
        }
        other => return Err(format!("unknown scheduler '{other}' (fifo|fp|edf)")),
    }
    Ok(())
}

fn rbf(sys: &SystemSpec, opts: &[String]) -> Result<(), String> {
    let horizon: Q = opt_value(opts, "--horizon")
        .unwrap_or_else(|| "100".into())
        .parse()
        .map_err(|e| format!("bad --horizon: {e}"))?;
    for t in &sys.tasks {
        let rbf = Rbf::compute(t, horizon);
        println!("task {}: rbf breakpoints (window, work):", t.name());
        for &(s, w) in rbf.points() {
            println!("  {s:>8}  {w}");
        }
    }
    Ok(())
}

fn simulate(sys: &SystemSpec, opts: &[String]) -> Result<(), String> {
    let beta = server_curve(sys)?;
    let seeds: u64 = opt_value(opts, "--seeds")
        .unwrap_or_else(|| "20".into())
        .parse()
        .map_err(|e| format!("bad --seeds: {e}"))?;
    let horizon: Q = opt_value(opts, "--horizon")
        .unwrap_or_else(|| "300".into())
        .parse()
        .map_err(|e| format!("bad --horizon: {e}"))?;
    // Simulate on the fluid instance at the server's guaranteed rate
    // (which dominates the declared lower curve).
    let service = ServiceProcess::fluid(beta.rate());
    let per = fifo_structural(&sys.tasks, &beta, &AnalysisConfig::default())
        .map_err(|e| e.to_string())?;
    let mut worst = Q::ZERO;
    for seed in 0..seeds {
        let traces: Vec<_> = sys
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| earliest_random_walk(t, horizon, None, seed * 131 + i as u64))
            .collect();
        let out = simulate_fifo(&sys.tasks, &traces, &service);
        for (si, task) in sys.tasks.iter().enumerate() {
            for v in task.vertex_ids() {
                let d = out.max_delay_of(si, v);
                worst = worst.max(d);
                if d > per[si].bound_of(v) {
                    return Err(format!(
                        "BUG: simulated delay {d} exceeds bound {} (stream {si}, {v})",
                        per[si].bound_of(v)
                    ));
                }
            }
        }
    }
    println!(
        "simulated {seeds} random runs to horizon {horizon}: worst observed delay {worst} \
         (all within the analytic per-type bounds)"
    );
    Ok(())
}
