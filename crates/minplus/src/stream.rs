//! Streaming breakpoint pipelines and small-segment storage.
//!
//! Three pieces live here:
//!
//! * [`PieceBuf`] — the segment store backing [`Curve`]: up to
//!   [`INLINE_PIECES`] pieces inline (no heap traffic for the small curves
//!   that dominate real workloads), spilling to a `Vec` beyond that.
//! * [`CurveStream`] / [`Unroll`] — a lazy breakpoint event source: yields
//!   `(start, value, slope)` events of a curve unrolled to a horizon one at
//!   a time, metering periodic lifts exactly like
//!   [`Curve::try_pieces_upto`] without ever materializing the unrolled
//!   list. The convolution kernels consume their operands through this.
//! * [`Pipe`] — a fused operator pipeline over raw (trusted, unvalidated)
//!   intermediate curves: convolution, pointwise min, and clamped
//!   subtraction stages chain without intermediate validation scans or
//!   shape-cache churn, sharing one scratch arena across stages; a
//!   canonical [`Curve`] is collected only at the pipeline exits
//!   ([`Pipe::finish`], [`Pipe::hdev_of`], [`Pipe::vdev_of`]).
//!
//! Every stage runs the *same* metered kernel cores as the materializing
//! entry points, so budget trips, cancellation, and fault injection land on
//! identical operation indices, and exit results are byte-identical to the
//! materializing composition (the final normalization merges any colinear
//! breakpoints an unnormalized intermediate may have introduced).

use crate::conv::ConvScratch;
use crate::curve::{Curve, Piece, Tail};
use crate::error::CurveError;
use crate::extended::Ext;
use crate::meter::BudgetMeter;
use crate::ops::{try_pointwise_min_raw, try_sub_clamped_parts};
use crate::ratio::Q;

/// Number of pieces a [`PieceBuf`] stores without touching the heap.
pub const INLINE_PIECES: usize = 8;

/// The inline filler value (never observed: `len` guards it).
const FILL: Piece = Piece {
    start: Q::ZERO,
    value: Q::ZERO,
    slope: Q::ZERO,
};

/// Small-vector storage for curve pieces: inline up to [`INLINE_PIECES`]
/// entries, heap beyond. Equality, ordering and hashing are by the stored
/// slice, so an inline buffer and a spilled buffer holding the same pieces
/// are indistinguishable.
#[derive(Clone)]
pub struct PieceBuf {
    repr: Repr,
}

// The size gap between the variants is the design: the inline variant IS
// the small-buffer optimization, and boxing it would reintroduce the heap
// round-trip the type exists to avoid.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
enum Repr {
    Inline {
        len: u8,
        buf: [Piece; INLINE_PIECES],
    },
    Heap(Vec<Piece>),
}

impl PieceBuf {
    /// An empty buffer (inline).
    #[inline]
    pub fn new() -> PieceBuf {
        PieceBuf {
            repr: Repr::Inline {
                len: 0,
                buf: [FILL; INLINE_PIECES],
            },
        }
    }

    /// Appends a piece, spilling to the heap when the inline capacity is
    /// exhausted.
    pub fn push(&mut self, p: Piece) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                let n = *len as usize;
                if n < INLINE_PIECES {
                    buf[n] = p;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(2 * INLINE_PIECES);
                    v.extend_from_slice(&buf[..n]);
                    v.push(p);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.push(p),
        }
    }

    /// The stored pieces as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Piece] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Is the buffer currently stored inline (no heap allocation)?
    #[inline]
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }
}

impl Default for PieceBuf {
    fn default() -> Self {
        PieceBuf::new()
    }
}

impl std::ops::Deref for PieceBuf {
    type Target = [Piece];
    #[inline]
    fn deref(&self) -> &[Piece] {
        self.as_slice()
    }
}

impl From<Vec<Piece>> for PieceBuf {
    /// Moves a piece list in; short lists are copied inline (releasing the
    /// heap allocation), longer ones are kept as-is.
    fn from(v: Vec<Piece>) -> PieceBuf {
        if v.len() <= INLINE_PIECES {
            let mut buf = [FILL; INLINE_PIECES];
            buf[..v.len()].copy_from_slice(&v);
            PieceBuf {
                repr: Repr::Inline {
                    len: v.len() as u8,
                    buf,
                },
            }
        } else {
            PieceBuf {
                repr: Repr::Heap(v),
            }
        }
    }
}

impl FromIterator<Piece> for PieceBuf {
    fn from_iter<I: IntoIterator<Item = Piece>>(iter: I) -> PieceBuf {
        let mut out = PieceBuf::new();
        for p in iter {
            out.push(p);
        }
        out
    }
}

impl PartialEq for PieceBuf {
    #[inline]
    fn eq(&self, other: &PieceBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PieceBuf {}

impl std::hash::Hash for PieceBuf {
    /// Hashes like `Vec<Piece>` (length prefix plus elements), so switching
    /// the `Curve` field from `Vec` to `PieceBuf` left hashes unchanged.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for PieceBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// A lazy source of curve breakpoint events.
///
/// Implementors yield [`Piece`]s in strictly increasing `start` order;
/// metered sources surface budget trips and arithmetic overflow as an
/// `Err` event, after which the stream is exhausted.
pub trait CurveStream {
    /// The next breakpoint event, or `None` when the stream is exhausted.
    fn next_event(&mut self) -> Option<Result<Piece, CurveError>>;
}

/// Lazy unroll of a curve's pieces so that explicit events cover `[0, h]`:
/// the streaming counterpart of [`Curve::try_pieces_upto`], ticking the
/// segment budget once per periodically lifted piece in the identical order
/// — but yielding events one at a time instead of materializing the list.
#[derive(Debug)]
pub struct Unroll<'a> {
    curve: &'a Curve,
    h: Q,
    meter: &'a BudgetMeter,
    /// Next explicit piece to yield.
    idx: usize,
    /// Next period instance (periodic tails only).
    k: i128,
    /// Index into `pieces` within the current instance.
    pat_i: usize,
    shift: Q,
    lift: Q,
    instance_ready: bool,
    done: bool,
}

impl<'a> Unroll<'a> {
    /// Streams `curve` unrolled so explicit events cover `[0, h]`.
    ///
    /// # Panics
    ///
    /// Panics if `h < 0`.
    pub fn new(curve: &'a Curve, h: Q, meter: &'a BudgetMeter) -> Unroll<'a> {
        assert!(!h.is_negative(), "Unroll with negative horizon");
        Unroll {
            curve,
            h,
            meter,
            idx: 0,
            k: 1,
            pat_i: 0,
            shift: Q::ZERO,
            lift: Q::ZERO,
            instance_ready: false,
            done: false,
        }
    }

    fn fail(&mut self, e: CurveError) -> Option<Result<Piece, CurveError>> {
        self.done = true;
        Some(Err(e))
    }
}

impl CurveStream for Unroll<'_> {
    fn next_event(&mut self) -> Option<Result<Piece, CurveError>> {
        const OVF: CurveError = CurveError::Arithmetic(crate::error::ArithmeticError::Overflow);
        if self.done {
            return None;
        }
        let pieces = self.curve.pieces();
        if self.idx < pieces.len() {
            let p = pieces[self.idx];
            self.idx += 1;
            return Some(Ok(p));
        }
        let (pattern_start, period, increment) = match self.curve.tail() {
            Tail::Affine => {
                self.done = true;
                return None;
            }
            Tail::Periodic {
                pattern_start,
                period,
                increment,
            } => (pattern_start, period, increment),
        };
        let s = pieces[pattern_start].start;
        loop {
            if !self.instance_ready {
                let kq = Q::int(self.k);
                let shift = match period.checked_mul(kq) {
                    Some(v) => v,
                    None => return self.fail(OVF),
                };
                let lift = match increment.checked_mul(kq) {
                    Some(v) => v,
                    None => return self.fail(OVF),
                };
                match s.checked_add(shift) {
                    Some(v) if v > self.h => {
                        self.done = true;
                        return None;
                    }
                    Some(_) => {}
                    None => return self.fail(OVF),
                }
                self.shift = shift;
                self.lift = lift;
                self.pat_i = pattern_start;
                self.instance_ready = true;
            }
            if self.pat_i < pieces.len() {
                if !self.meter.tick_segment() {
                    let kind = self
                        .meter
                        .tripped()
                        .expect("tick_segment returned false without tripping");
                    return self.fail(CurveError::Budget(kind));
                }
                let p = pieces[self.pat_i];
                self.pat_i += 1;
                let start = match p.start.checked_add(self.shift) {
                    Some(v) => v,
                    None => return self.fail(OVF),
                };
                let value = match p.value.checked_add(self.lift) {
                    Some(v) => v,
                    None => return self.fail(OVF),
                };
                return Some(Ok(Piece::new(start, value, p.slope)));
            }
            self.instance_ready = false;
            self.k += 1;
        }
    }
}

/// A fused (min,+) operator pipeline.
///
/// Stages transform an intermediate curve built by trusted kernels — the
/// per-stage validation scan of [`Curve::new`] is skipped entirely, and a
/// single scratch arena (candidate fragments, event grids, envelope lines)
/// is reused across all convolution stages, so a chain like
/// conv → min → hdev allocates O(1) intermediate buffers instead of a
/// fresh set per operator. Each stage's pieces are byte-identical to the
/// corresponding materializing operator's output, so [`Pipe::finish`] and
/// the deviation exits ([`Pipe::hdev_of`] / [`Pipe::vdev_of`]) return
/// exactly what the materializing composition returns — including the
/// meter tick sequence, hence budget trips, cancellation, and injected
/// faults land on identical operation indices.
///
/// # Examples
///
/// ```
/// use srtw_minplus::{BudgetMeter, Curve, Ext, Pipe, Q};
///
/// let b1 = Curve::rate_latency(Q::int(2), Q::int(1));
/// let b2 = Curve::rate_latency(Q::ONE, Q::int(2));
/// let alpha = Curve::staircase(Q::int(4), Q::int(2));
/// let meter = BudgetMeter::unlimited();
///
/// // Fused end-to-end service and delay bound …
/// let delay = Pipe::new(b1.clone(), &meter)
///     .conv_upto(&b2, Q::int(60))
///     .unwrap()
///     .hdev_of(&alpha)
///     .unwrap();
/// // … identical to the materializing composition.
/// assert_eq!(delay, alpha.hdev(&b1.conv_upto(&b2, Q::int(60))));
/// assert_eq!(delay, Ext::Finite(Q::int(5)));
/// ```
pub struct Pipe<'a> {
    cur: Curve,
    meter: &'a BudgetMeter,
    scratch: ConvScratch,
}

impl std::fmt::Debug for Pipe<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipe").field("cur", &self.cur).finish()
    }
}

impl<'a> Pipe<'a> {
    /// Starts a pipeline from an initial curve.
    pub fn new(start: Curve, meter: &'a BudgetMeter) -> Pipe<'a> {
        Pipe {
            cur: start,
            meter,
            scratch: ConvScratch::new(),
        }
    }

    /// (min,+) convolution stage, exact on `[0, h]` — the fused counterpart
    /// of [`Curve::try_conv_upto`], reusing the pipeline's scratch arena.
    pub fn conv_upto(mut self, other: &Curve, h: Q) -> Result<Pipe<'a>, CurveError> {
        self.cur = self
            .cur
            .try_conv_upto_raw(other, h, self.meter, &mut self.scratch)?;
        Ok(self)
    }

    /// Pointwise-minimum stage — the fused counterpart of
    /// [`Curve::try_pointwise_min`].
    pub fn min(mut self, other: &Curve) -> Result<Pipe<'a>, CurveError> {
        self.cur = try_pointwise_min_raw(&self.cur, other, self.meter)?;
        Ok(self)
    }

    /// Clamped monotone subtraction stage `[self − other]⁺↑` — the fused
    /// counterpart of [`Curve::try_sub_clamped_monotone`] (leftover
    /// service).
    pub fn sub_clamped(mut self, other: &Curve) -> Result<Pipe<'a>, CurveError> {
        let (pieces, tail) = try_sub_clamped_parts(&self.cur, other, self.meter)?;
        self.cur = Curve::raw(pieces, tail).into_normalized();
        Ok(self)
    }

    /// (min,+) deconvolution stage `self ⊘ other`, exact on `[0, h]`, with
    /// the inner supremum searched over `u ∈ [0, u_cap]` — the fused
    /// counterpart of [`Curve::try_deconv_upto`] (output arrival-curve
    /// propagation).
    pub fn deconv_upto(mut self, other: &Curve, h: Q, u_cap: Q) -> Result<Pipe<'a>, CurveError> {
        self.cur =
            self.cur
                .try_deconv_upto_with(other, h, u_cap, self.meter, &mut self.scratch, false)?;
        Ok(self)
    }

    /// Delay-bound exit: `hdev(demand, current)` — the worst-case delay of
    /// `demand` served by the pipeline's current curve.
    pub fn hdev_of(self, demand: &Curve) -> Result<Ext, CurveError> {
        demand.try_hdev(&self.cur, self.meter)
    }

    /// Delay-bound tap: `hdev(current, beta)` — the worst-case delay of the
    /// pipeline's current curve (as demand) served by `beta`. A tap, not an
    /// exit: the pipeline can keep flowing (e.g. per-hop tandem bounds
    /// interleaved with [`Pipe::deconv_upto`] propagation).
    pub fn hdev_against(&self, beta: &Curve) -> Result<Ext, CurveError> {
        self.cur.try_hdev(beta, self.meter)
    }

    /// Backlog-bound tap: `vdev(current, beta)`.
    pub fn vdev_against(&self, beta: &Curve) -> Result<Ext, CurveError> {
        self.cur.try_vdev(beta, self.meter)
    }

    /// Backlog-bound exit: `vdev(demand, current)`.
    pub fn vdev_of(self, demand: &Curve) -> Result<Ext, CurveError> {
        demand.try_vdev(&self.cur, self.meter)
    }

    /// A view of the current (raw) intermediate curve. Values are final;
    /// the representation may still contain unmerged colinear breakpoints
    /// until [`Pipe::finish`] canonicalizes it.
    pub fn current(&self) -> &Curve {
        &self.cur
    }

    /// Collects the pipeline result into a canonical [`Curve`]:
    /// normalization merges any colinear breakpoints left by the raw
    /// stages, yielding exactly the curve the materializing composition
    /// produces.
    pub fn finish(self) -> Curve {
        self.cur.into_normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::q;

    #[test]
    fn piecebuf_inline_and_spill() {
        let mut b = PieceBuf::new();
        assert!(b.is_inline() && b.is_empty());
        for i in 0..INLINE_PIECES {
            b.push(Piece::new(Q::int(i as i128), Q::int(i as i128), Q::ONE));
        }
        assert!(b.is_inline());
        assert_eq!(b.len(), INLINE_PIECES);
        b.push(Piece::new(Q::int(99), Q::int(99), Q::ONE));
        assert!(!b.is_inline());
        assert_eq!(b.len(), INLINE_PIECES + 1);
        assert_eq!(b[INLINE_PIECES].start, Q::int(99));
        // From<Vec> keeps short lists inline, long lists on the heap.
        let short: PieceBuf = vec![FILL; 3].into();
        assert!(short.is_inline());
        let long: PieceBuf = vec![FILL; 9].into();
        assert!(!long.is_inline());
        // Equality and hashing are representation-independent.
        let a: PieceBuf = b.as_slice().to_vec().into();
        assert_eq!(a, b);
        use std::hash::{Hash, Hasher};
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn unroll_matches_pieces_upto() {
        let meter = BudgetMeter::unlimited();
        let curves = [
            Curve::staircase(Q::int(5), Q::int(2)),
            Curve::rate_latency(Q::int(2), Q::int(3)),
            Curve::staircase_lower(q(3, 2), Q::ONE),
        ];
        for c in &curves {
            for h in [Q::ZERO, Q::int(7), Q::int(40)] {
                let mut got = Vec::new();
                let mut s = Unroll::new(c, h, &meter);
                while let Some(ev) = s.next_event() {
                    got.push(ev.unwrap());
                }
                assert_eq!(got, c.pieces_upto(h), "curve {c} at h = {h}");
            }
        }
    }

    #[test]
    fn unroll_ticks_like_pieces_upto() {
        use crate::meter::Budget;
        let c = Curve::staircase(Q::ONE, Q::ONE);
        let h = Q::int(50);
        // Same tick demand: a cap that trips the materializing unroll trips
        // the stream at the same segment count.
        let m1 = BudgetMeter::new(&Budget::default().with_max_segments(10));
        let materialized = c.try_pieces_upto(h, &m1);
        assert!(materialized.is_err());
        let m2 = BudgetMeter::new(&Budget::default().with_max_segments(10));
        let mut s = Unroll::new(&c, h, &m2);
        let mut streamed_err = None;
        let mut yielded = 0usize;
        while let Some(ev) = s.next_event() {
            match ev {
                Ok(_) => yielded += 1,
                Err(e) => {
                    streamed_err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(streamed_err, materialized.err());
        // Explicit prefix (1 piece) plus the 10 budgeted lifts that passed.
        assert_eq!(yielded, 11);
        assert!(s.next_event().is_none(), "stream is exhausted after error");
    }

    #[test]
    fn pipe_matches_materializing_composition() {
        let meter = BudgetMeter::unlimited();
        let b1 = Curve::rate_latency(Q::int(2), Q::int(1));
        let b2 = Curve::staircase(Q::int(3), Q::int(2));
        let alpha = Curve::staircase(Q::int(4), Q::int(3));
        let h = Q::int(40);

        let fused = Pipe::new(b1.clone(), &meter)
            .conv_upto(&b2, h)
            .unwrap()
            .min(&b2)
            .unwrap()
            .finish();
        let materialized = b1.conv_upto(&b2, h).pointwise_min(&b2);
        assert_eq!(fused, materialized);

        let fused_delay = Pipe::new(b1.clone(), &meter)
            .conv_upto(&b2, h)
            .unwrap()
            .hdev_of(&alpha)
            .unwrap();
        assert_eq!(fused_delay, alpha.hdev(&b1.conv_upto(&b2, h)));

        let fused_left = Pipe::new(b1.clone(), &meter)
            .sub_clamped(&alpha)
            .unwrap()
            .finish();
        assert_eq!(fused_left, b1.sub_clamped_monotone(&alpha));
    }

    #[test]
    fn pipe_respects_budget() {
        use crate::meter::Budget;
        let b1 = Curve::staircase(Q::ONE, Q::ONE);
        let b2 = Curve::staircase(Q::int(2), Q::ONE);
        let meter = BudgetMeter::new(&Budget::default().with_max_segments(5));
        let got = Pipe::new(b1, &meter).conv_upto(&b2, Q::int(1000));
        assert!(matches!(got, Err(CurveError::Budget(_))));
    }
}
