//! Job descriptions and per-job outcome provenance.

use srtw_core::{DelayAnalysis, Json, RtcReport};
use srtw_minplus::Curve;
use srtw_workload::DrtTask;
use std::fmt;
use std::time::Duration;

/// One unit of batch work: a multiplex of task streams on a server.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Display name (typically the `.srtw` file stem).
    pub name: String,
    /// The task streams, in priority/file order.
    pub tasks: Vec<DrtTask>,
    /// Lower service curve of the shared server.
    pub beta: Curve,
}

impl JobSpec {
    /// Bundles a named job.
    pub fn new(name: impl Into<String>, tasks: Vec<DrtTask>, beta: Curve) -> JobSpec {
        JobSpec {
            name: name.into(),
            tasks,
            beta,
        }
    }
}

/// One rung of the retry/degrade ladder, from most precise to coarsest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// Full structural analysis, no cooperative budget (the watchdog's
    /// hard deadline still applies).
    Exact,
    /// Structural analysis under a wall-clock budget; retries halve the
    /// cap.
    Budgeted {
        /// The wall-clock cap of this attempt, in milliseconds.
        wall_ms: u64,
    },
    /// The RTC (arrival-curve) baseline only — the fraction-0 fallback:
    /// one stream-wide bound, no per-type attribution, cheapest to
    /// compute and still sound.
    RtcBaseline,
}

impl Rung {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            Rung::Exact => "exact",
            Rung::Budgeted { .. } => "budgeted",
            Rung::RtcBaseline => "rtc",
        }
    }

    /// The rung as a JSON value.
    pub fn to_json(self) -> Json {
        match self {
            Rung::Budgeted { wall_ms } => Json::object(vec![
                ("kind", Json::str("budgeted")),
                ("wall_ms", Json::Int(wall_ms as i128)),
            ]),
            other => Json::object(vec![("kind", Json::str(other.as_str()))]),
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rung::Exact => write!(f, "exact"),
            Rung::Budgeted { wall_ms } => write!(f, "budgeted({wall_ms} ms)"),
            Rung::RtcBaseline => write!(f, "rtc"),
        }
    }
}

/// How one attempt at one rung ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptStatus {
    /// The analysis returned a result (possibly budget- or
    /// cancellation-degraded, see [`Attempt::degraded`]).
    Completed,
    /// The analysis returned a typed error (rendered).
    Failed {
        /// The rendered [`srtw_core::AnalysisError`].
        error: String,
    },
    /// The analysis panicked; `catch_unwind` contained it.
    Panicked {
        /// The rendered panic payload.
        message: String,
    },
    /// The watchdog cancelled the attempt and the worker thread did not
    /// wind down within the grace period: the thread was abandoned.
    HardTimeout,
}

impl AttemptStatus {
    /// Stable machine-readable name.
    pub fn as_str(&self) -> &'static str {
        match self {
            AttemptStatus::Completed => "completed",
            AttemptStatus::Failed { .. } => "failed",
            AttemptStatus::Panicked { .. } => "panicked",
            AttemptStatus::HardTimeout => "hard_timeout",
        }
    }
}

/// Provenance of one attempt at one rung.
#[derive(Debug, Clone)]
pub struct Attempt {
    /// The ladder rung attempted.
    pub rung: Rung,
    /// How the attempt ended.
    pub status: AttemptStatus,
    /// `true` when the attempt completed but any stream's bound is
    /// budget- or cancellation-degraded (sound, possibly pessimistic), or
    /// when the rung itself is the coarser [`Rung::RtcBaseline`].
    pub degraded: bool,
    /// Wall-clock time of the attempt as observed by the supervisor.
    pub wall: Duration,
    /// Degradation records from the analysis (empty unless completed
    /// degraded).
    pub degradations: Vec<srtw_core::Degradation>,
}

impl Attempt {
    /// The attempt as a JSON value.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("rung", self.rung.to_json()),
            ("status", Json::str(self.status.as_str())),
            ("degraded", Json::Bool(self.degraded)),
            ("wall_ms", Json::Float(self.wall.as_secs_f64() * 1e3)),
        ];
        match &self.status {
            AttemptStatus::Failed { error } => members.push(("error", Json::str(error))),
            AttemptStatus::Panicked { message } => members.push(("panic", Json::str(message))),
            _ => {}
        }
        members.push((
            "degradations",
            Json::Array(self.degradations.iter().map(|d| d.to_json()).collect()),
        ));
        Json::object(members)
    }
}

/// The analysis result a successful rung produced.
#[derive(Debug, Clone)]
pub enum AnalysisOutput {
    /// Structural per-stream analyses ([`Rung::Exact`] /
    /// [`Rung::Budgeted`]).
    Structural(Vec<DelayAnalysis>),
    /// The stream-agnostic RTC baseline ([`Rung::RtcBaseline`]).
    Rtc(RtcReport),
}

impl AnalysisOutput {
    /// `true` when any contained report is budget-degraded.
    pub fn any_degraded(&self) -> bool {
        match self {
            AnalysisOutput::Structural(per) => per.iter().any(|a| !a.quality.is_exact()),
            AnalysisOutput::Rtc(r) => !r.quality.is_exact(),
        }
    }

    /// Degradation records of every contained report.
    pub fn degradations(&self) -> Vec<srtw_core::Degradation> {
        match self {
            AnalysisOutput::Structural(per) => {
                per.iter().flat_map(|a| a.degradations.clone()).collect()
            }
            AnalysisOutput::Rtc(_) => Vec::new(),
        }
    }

    /// The output as a JSON value (mirrors `srtw analyze --json`).
    pub fn to_json(&self) -> Json {
        match self {
            AnalysisOutput::Structural(per) => Json::object(vec![(
                "streams",
                Json::Array(per.iter().map(|a| a.to_json()).collect()),
            )]),
            AnalysisOutput::Rtc(r) => Json::object(vec![("rtc", r.to_json())]),
        }
    }
}

/// Final classification of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Completed with exact bounds.
    Exact,
    /// Completed with sound but degraded bounds (a budget tripped, the
    /// watchdog cancelled, or only the RTC rung succeeded).
    Degraded,
    /// Every rung of the ladder failed.
    Failed,
    /// Not attempted (`--fail-fast` stopped the batch first).
    Skipped,
}

impl JobStatus {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Exact => "exact",
            JobStatus::Degraded => "degraded",
            JobStatus::Failed => "failed",
            JobStatus::Skipped => "skipped",
        }
    }
}

/// Everything the supervisor knows about one finished job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's name.
    pub name: String,
    /// Final classification.
    pub status: JobStatus,
    /// The rung that produced the result (`None` when failed/skipped).
    pub rung: Option<Rung>,
    /// Every attempt, in ladder order.
    pub attempts: Vec<Attempt>,
    /// Total wall-clock time across all attempts.
    pub wall: Duration,
    /// The successful rung's analysis result.
    pub output: Option<AnalysisOutput>,
    /// The last attempt's error when every rung failed, or the reason a
    /// job never ran (parse failure, skipped).
    pub error: Option<String>,
}

impl JobOutcome {
    /// A job that never ran because the batch stopped first.
    pub fn skipped(name: impl Into<String>) -> JobOutcome {
        JobOutcome {
            name: name.into(),
            status: JobStatus::Skipped,
            rung: None,
            attempts: Vec::new(),
            wall: Duration::ZERO,
            output: None,
            error: Some("skipped: batch stopped by --fail-fast".into()),
        }
    }

    /// A job that failed before any rung ran (e.g. its system file did not
    /// parse).
    pub fn pre_failed(name: impl Into<String>, error: impl Into<String>) -> JobOutcome {
        JobOutcome {
            name: name.into(),
            status: JobStatus::Failed,
            rung: None,
            attempts: Vec::new(),
            wall: Duration::ZERO,
            output: None,
            error: Some(error.into()),
        }
    }

    /// The outcome as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("name", Json::str(&self.name)),
            ("status", Json::str(self.status.as_str())),
            (
                "rung",
                match self.rung {
                    Some(r) => r.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "attempts",
                Json::Array(self.attempts.iter().map(Attempt::to_json).collect()),
            ),
            ("wall_ms", Json::Float(self.wall.as_secs_f64() * 1e3)),
            (
                "result",
                match &self.output {
                    Some(o) => o.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "error",
                match &self.error {
                    Some(e) => Json::str(e),
                    None => Json::Null,
                },
            ),
        ])
    }
}
