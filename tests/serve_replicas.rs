//! Process-level supervision-tree coverage of `srtw serve --replicas N`,
//! driven through the real binary over real signals:
//!
//! - `SIGKILL` of one replica produces *exactly one* restart, the
//!   parent's `/readyz` flaps at most once, and the fleet recovers;
//! - `SIGTERM` to the parent drains every replica and exits 0 with no
//!   orphan processes left behind;
//! - `POST /analyze` through the shared listener stays byte-identical to
//!   `srtw analyze --json` (modulo `runtime_secs`) under replication.
#![cfg(unix)]

use srtw::serve::http::client_roundtrip;
use srtw::serve::sys;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const SMALL_SYSTEM: &str =
    "task t\nvertex a wcet=2 deadline=9\nedge a a sep=8\nserver fluid rate=1\n";

/// A running `srtw serve --replicas 2` tree with its stdout captured.
struct Tree {
    child: Child,
    public: SocketAddr,
    admin: SocketAddr,
    /// `(index, pid, admin)` per replica announce, in announce order.
    replicas: Vec<(usize, u32, SocketAddr)>,
    log: Arc<Mutex<Vec<String>>>,
}

impl Tree {
    // The child is waited on via `wait_exit` in every test; the panic
    // path below kills and reaps it explicitly.
    #[allow(clippy::zombie_processes)]
    fn spawn() -> Tree {
        let mut child = Command::new(env!("CARGO_BIN_EXE_srtw"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--replicas",
                "2",
                "--workers",
                "2",
                "--drain-ms",
                "2000",
            ])
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn the serve tree");
        let stdout = child.stdout.take().expect("stdout was piped");
        let log = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = Arc::clone(&log);
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                match line {
                    Ok(line) => sink.lock().unwrap().push(line),
                    Err(_) => return,
                }
            }
        });

        // Discover every address from the stdout protocol.
        let deadline = Instant::now() + Duration::from_secs(20);
        let (mut public, mut admin) = (None, None);
        let mut replicas = Vec::new();
        while Instant::now() < deadline {
            for line in log.lock().unwrap().iter() {
                if let Some(rest) = line.strip_prefix("srtw-serve listening on ") {
                    public = rest.trim().parse().ok();
                } else if let Some(rest) = line.strip_prefix("srtw-serve supervisor admin on ") {
                    admin = rest.trim().parse().ok();
                } else if let Some((index, pid, addr)) = parse_replica_announce(line) {
                    if !replicas.iter().any(|&(_, p, _)| p == pid) {
                        replicas.push((index, pid, addr));
                    }
                }
            }
            if let (Some(public), Some(admin)) = (public, admin) {
                if replicas.len() >= 2 {
                    return Tree {
                        child,
                        public,
                        admin,
                        replicas,
                        log,
                    };
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let _ = child.kill();
        let _ = child.wait();
        panic!(
            "tree never announced itself; stdout so far: {:?}",
            log.lock().unwrap()
        );
    }

    /// Polls the parent `/readyz` until it answers 200 (quorum reached).
    fn wait_ready(&self) {
        let deadline = Instant::now() + Duration::from_secs(20);
        while Instant::now() < deadline {
            if let Ok((200, _, _)) = client_roundtrip(&self.admin, "GET", "/readyz", &[], b"") {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("parent /readyz never reached quorum");
    }

    /// Lines captured so far that contain `needle`.
    fn log_matches(&self, needle: &str) -> Vec<String> {
        self.log
            .lock()
            .unwrap()
            .iter()
            .filter(|l| l.contains(needle))
            .cloned()
            .collect()
    }

    fn wait_exit(&mut self, patience: Duration) -> ExitStatus {
        let deadline = Instant::now() + patience;
        loop {
            if let Ok(Some(status)) = self.child.try_wait() {
                return status;
            }
            if Instant::now() >= deadline {
                let _ = self.child.kill();
                panic!("serve tree did not exit within {patience:?}");
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// `srtw-serve replica <i> pid <pid> admin on <addr>`.
fn parse_replica_announce(line: &str) -> Option<(usize, u32, SocketAddr)> {
    let rest = line.trim().strip_prefix("srtw-serve replica ")?;
    let mut words = rest.split(' ');
    let index = words.next()?.parse().ok()?;
    if words.next()? != "pid" {
        return None;
    }
    let pid = words.next()?.parse().ok()?;
    if (words.next()?, words.next()?) != ("admin", "on") {
        return None;
    }
    let addr = words.next()?.parse().ok()?;
    Some((index, pid, addr))
}

fn pid_alive(pid: u32) -> bool {
    std::path::Path::new(&format!("/proc/{pid}")).exists()
}

/// Strips every `"runtime_secs":<number>` value (the document's one
/// nondeterministic field).
fn strip_runtime(doc: &str) -> String {
    let mut out = String::with_capacity(doc.len());
    let mut rest = doc;
    while let Some(pos) = rest.find("\"runtime_secs\":") {
        let after = pos + "\"runtime_secs\":".len();
        out.push_str(&rest[..after]);
        out.push('0');
        let tail = &rest[after..];
        let end = tail.find([',', '}']).unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// The CLI's stdout for `analyze <system> --json`, via a temp file.
fn cli_expected(text: &str) -> String {
    let path = std::env::temp_dir().join(format!("srtw-replicas-{}.srtw", std::process::id()));
    std::fs::write(&path, text).expect("write temp system");
    let out = Command::new(env!("CARGO_BIN_EXE_srtw"))
        .args(["analyze", path.to_str().unwrap(), "--json"])
        .output()
        .expect("srtw runs");
    let _ = std::fs::remove_file(&path);
    assert!(out.status.success());
    String::from_utf8(out.stdout).expect("utf-8 CLI output")
}

#[test]
fn sigkill_one_replica_restarts_it_once_and_quorum_recovers() {
    let mut tree = Tree::spawn();
    tree.wait_ready();

    // Replicated answers must be byte-identical to the CLI before the
    // fault...
    let expected = strip_runtime(&cli_expected(SMALL_SYSTEM));
    for _ in 0..3 {
        let (status, _, body) =
            client_roundtrip(&tree.public, "POST", "/analyze", &[], SMALL_SYSTEM.as_bytes())
                .expect("analyze round trip");
        assert_eq!(status, 200, "{body}");
        assert_eq!(strip_runtime(&body), expected);
    }

    // Kill one replica outright and watch the tree repair itself.
    let (victim_index, victim_pid, _) = tree.replicas[0];
    assert!(sys::send_signal(victim_pid, sys::SIGKILL));

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut statuses: Vec<u16> = Vec::new();
    let recovered = loop {
        if Instant::now() >= deadline {
            break false;
        }
        if let Ok((status, _, _)) = client_roundtrip(&tree.admin, "GET", "/readyz", &[], b"") {
            statuses.push(status);
        }
        let respawned = tree.log.lock().unwrap().iter().any(|l| {
            parse_replica_announce(l)
                .is_some_and(|(i, pid, _)| i == victim_index && pid != victim_pid)
        });
        if respawned && statuses.last() == Some(&200) {
            break true;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(recovered, "replica never respawned; readyz history {statuses:?}");

    // At most one flap: the readyz series dips into 503 at most once.
    let dips = statuses.windows(2).filter(|w| w[0] == 200 && w[1] != 200).count()
        + usize::from(statuses.first().is_some_and(|&s| s != 200));
    assert!(dips <= 1, "readyz flapped {dips} times: {statuses:?}");

    // Exactly one restart, visible both in the log and in /stats.
    std::thread::sleep(Duration::from_millis(300));
    let restarts = tree.log_matches("; restart in ");
    assert_eq!(restarts.len(), 1, "restart lines: {restarts:?}");
    let (status, _, stats) =
        client_roundtrip(&tree.admin, "GET", "/stats", &[], b"").expect("stats scrape");
    assert_eq!(status, 200);
    assert!(stats.contains("\"role\":\"supervisor\""), "{stats}");
    assert!(stats.contains("\"restarts\":1"), "{stats}");

    // ...and identical again after recovery.
    let (status, _, body) =
        client_roundtrip(&tree.public, "POST", "/analyze", &[], SMALL_SYSTEM.as_bytes())
            .expect("analyze after recovery");
    assert_eq!(status, 200, "{body}");
    assert_eq!(strip_runtime(&body), expected);

    // Clean shutdown through the admin plane.
    let (status, _, _) =
        client_roundtrip(&tree.admin, "POST", "/shutdown", &[], b"").expect("shutdown");
    assert_eq!(status, 200);
    let exit = tree.wait_exit(Duration::from_secs(15));
    assert!(exit.success(), "tree exited dirty: {exit:?}");
}

#[test]
fn sigterm_to_the_parent_drains_every_replica_with_no_orphans() {
    let mut tree = Tree::spawn();
    tree.wait_ready();
    let pids: Vec<u32> = tree.replicas.iter().map(|&(_, pid, _)| pid).collect();
    for &pid in &pids {
        assert!(pid_alive(pid), "replica {pid} not running before drain");
    }

    assert!(sys::send_signal(tree.child.id(), sys::SIGTERM));
    let exit = tree.wait_exit(Duration::from_secs(15));
    assert!(exit.success(), "drain exited dirty: {exit:?}");

    // The parent reaps its children before exiting, so no replica may
    // outlive it (nor linger as a zombie).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if pids.iter().all(|&pid| !pid_alive(pid)) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "orphaned replicas after parent exit: {:?}",
            pids.iter().filter(|&&p| pid_alive(p)).collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}
