//! The deterministic PRNG: a SplitMix64 core with unbiased integer range
//! sampling, shuffling and weighted choice.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) passes BigCrush, needs one
//! `u64` of state, and — crucially for reproducible experiments — is trivial
//! to specify exactly, so the streams this crate produces are stable across
//! platforms and releases.

use std::ops::{Range, RangeInclusive};

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Mixes a `u64` to a well-distributed `u64` (the SplitMix64 finalizer).
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic pseudo-random number generator (SplitMix64).
///
/// Not cryptographically secure; intended for reproducible workload
/// generation, simulation traces and property-based testing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Identical seeds produce
    /// identical streams on every platform.
    #[inline]
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// The next raw 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// The next 128-bit output (two core steps).
    #[inline]
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// A fair coin flip.
    #[inline]
    pub fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or `num > den`.
    pub fn random_ratio(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0, "random_ratio with zero denominator");
        assert!(num <= den, "random_ratio with num > den");
        self.below_u64(den) < num
    }

    /// An independent generator split off this one; the parent stream
    /// advances by one step. Derived streams do not overlap in practice
    /// because the child is re-mixed.
    pub fn fork(&mut self) -> Rng {
        Rng {
            state: mix64(self.next_u64() ^ GOLDEN_GAMMA),
        }
    }

    /// A uniform value in `range` (half-open `a..b` or inclusive `a..=b`)
    /// for any primitive integer type. Sampling is unbiased (rejection).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Item {
        R::sample(self, range)
    }

    /// Uniform in `[0, span)` without modulo bias (OpenBSD-style rejection).
    fn below_u64(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span == 1 {
            return 0;
        }
        // Smallest residue class representative of 2^64 mod span: values
        // below it would over-represent small results.
        let cutoff = span.wrapping_neg() % span;
        loop {
            let r = self.next_u64();
            if r >= cutoff {
                return r % span;
            }
        }
    }

    /// Uniform in `[0, span)` over the full 128-bit domain.
    fn below_u128(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        if span <= u64::MAX as u128 {
            return self.below_u64(span as u64) as u128;
        }
        let cutoff = span.wrapping_neg() % span;
        loop {
            let r = self.next_u128();
            if r >= cutoff {
                return r % span;
            }
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below_u64(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below_u64(xs.len() as u64) as usize])
        }
    }

    /// An index drawn with probability proportional to `weights[i]`.
    /// Returns `None` if the slice is empty or all weights are zero.
    pub fn choose_weighted(&mut self, weights: &[u64]) -> Option<usize> {
        let total: u128 = weights.iter().map(|&w| w as u128).sum();
        if total == 0 {
            return None;
        }
        let mut pick = self.below_u128(total);
        for (i, &w) in weights.iter().enumerate() {
            let w = w as u128;
            if pick < w {
                return Some(i);
            }
            pick -= w;
        }
        unreachable!("weighted pick below total weight")
    }
}

/// Integer ranges [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The produced integer type.
    type Item;
    /// Draws a uniform value; panics on an empty range.
    fn sample(rng: &mut Rng, range: Self) -> Self::Item;
}

macro_rules! impl_sample_range {
    ($($t:ty => $u:ty, $below:ident);* $(;)?) => {$(
        impl SampleRange for Range<$t> {
            type Item = $t;
            #[inline]
            fn sample(rng: &mut Rng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "random_range on empty range");
                let span = (range.end as $u).wrapping_sub(range.start as $u);
                range.start.wrapping_add(rng.$below(span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Item = $t;
            #[inline]
            fn sample(rng: &mut Rng, range: RangeInclusive<$t>) -> $t {
                let (lo, hi) = (*range.start(), *range.end());
                assert!(lo <= hi, "random_range on empty range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    // Full-domain range: every bit pattern is valid.
                    return (rng.next_u128() as $u) as $t;
                }
                lo.wrapping_add(rng.$below(span) as $t)
            }
        }
    )*};
}

impl_sample_range! {
    i128 => u128, below_u128;
    u128 => u128, below_u128;
    i64 => u64, below_u64;
    u64 => u64, below_u64;
    i32 => u64, below_u64;
    u32 => u64, below_u64;
    usize => u64, below_u64;
    isize => u64, below_u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(1);
        let mut c = Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn known_splitmix64_vector() {
        // Reference values for seed 0 from the canonical SplitMix64
        // implementation (Vigna).
        let mut r = Rng::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..2000 {
            let v = r.random_range(5i128..=50);
            assert!((5..=50).contains(&v));
            let w = r.random_range(0usize..7);
            assert!(w < 7);
            let x = r.random_range(-10i64..=-3);
            assert!((-10..=-3).contains(&x));
            let y = r.random_range(0u64..=u64::MAX); // full domain must not panic
            let _ = y;
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..600 {
            seen[r.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all faces seen: {seen:?}");
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(17);
        let mut counts = [0u32; 10];
        const N: u32 = 100_000;
        for _ in 0..N {
            counts[r.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per bucket; 10 sigma ≈ 950.
            assert!((9_000..=11_000).contains(&c), "skewed counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).random_range(3i128..3);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng::seed_from_u64(4);
        let mut xs: Vec<u32> = (0..20).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
        assert_ne!(xs, (0..20).collect::<Vec<u32>>(), "20 elements almost surely move");
    }

    #[test]
    fn choose_and_weighted_choice() {
        let mut r = Rng::seed_from_u64(5);
        assert_eq!(r.choose::<u8>(&[]), None);
        assert_eq!(r.choose(&[42]), Some(&42));
        assert_eq!(r.choose_weighted(&[]), None);
        assert_eq!(r.choose_weighted(&[0, 0]), None);
        assert_eq!(r.choose_weighted(&[0, 7, 0]), Some(1));
        // A 1:3 weighting lands in a sane band.
        let mut ones = 0;
        for _ in 0..4000 {
            if r.choose_weighted(&[1, 3]) == Some(1) {
                ones += 1;
            }
        }
        assert!((2700..=3300).contains(&ones), "weighted counts off: {ones}");
    }

    #[test]
    fn random_ratio_extremes() {
        let mut r = Rng::seed_from_u64(6);
        for _ in 0..50 {
            assert!(!r.random_ratio(0, 5));
            assert!(r.random_ratio(5, 5));
        }
    }

    #[test]
    fn fork_streams_diverge() {
        let mut a = Rng::seed_from_u64(11);
        let mut b = a.fork();
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}
