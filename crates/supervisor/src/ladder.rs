//! The supervised retry/degrade ladder for one job.
//!
//! An attempt runs on its own thread behind `catch_unwind`; the
//! supervising thread doubles as the watchdog: it waits for the result
//! with a timeout, raises the attempt's [`CancelToken`] when the hard
//! deadline passes, and abandons the thread if it does not wind down
//! within the grace period (safe Rust cannot kill a thread — an abandoned
//! attempt keeps its core busy until it next polls its meter, but the
//! batch moves on).

use crate::job::{
    AnalysisOutput, Attempt, AttemptStatus, JobOutcome, JobSpec, JobStatus, Rung,
};
use crate::supervise::{contain, Contained};
use srtw_core::{fifo_rtc_with, fifo_structural, AnalysisConfig, AnalysisError};
use srtw_minplus::{Budget, CancelToken, FaultPlan};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of the supervision around one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Hard wall-clock deadline per attempt, enforced by the watchdog via
    /// cancellation. `None` disables the watchdog (attempts may then only
    /// end cooperatively).
    pub timeout: Option<Duration>,
    /// Extra wait after cancellation before the worker thread is
    /// abandoned and the attempt recorded as a hard timeout.
    pub grace: Duration,
    /// Starting wall-clock cap (milliseconds) of the budgeted rung;
    /// halved on each budgeted retry.
    pub budget_ms: u64,
    /// Number of budgeted rungs between exact and the RTC baseline.
    pub budget_retries: u32,
    /// Deterministic fault injected into every attempt (testing only).
    pub fault: Option<FaultPlan>,
    /// Worker threads for each attempt's path exploration (the job-level
    /// split of the machine: batch jobs × per-job threads). `0`/`1` run
    /// the sequential engine; any value is bit-identical.
    pub threads: usize,
    /// External cancellation: when this token is raised (e.g. the batch's
    /// client disconnected), every in-flight attempt's own watchdog token
    /// is raised too, so the job winds down cooperatively with a sound,
    /// degraded result rather than running to completion.
    pub cancel: Option<CancelToken>,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            timeout: None,
            grace: Duration::from_secs(2),
            budget_ms: 1_000,
            budget_retries: 2,
            fault: None,
            threads: 1,
            cancel: None,
        }
    }
}

impl SupervisorConfig {
    /// The ladder this configuration descends: exact, then
    /// `budget_retries` budgeted rungs with halving wall caps, then the
    /// RTC baseline.
    pub fn rungs(&self) -> Vec<Rung> {
        let mut rungs = vec![Rung::Exact];
        let mut ms = self.budget_ms.max(1);
        for _ in 0..self.budget_retries {
            rungs.push(Rung::Budgeted { wall_ms: ms });
            ms = (ms / 2).max(1);
        }
        rungs.push(Rung::RtcBaseline);
        rungs
    }

    /// The cooperative budget of an attempt at `rung` (before the cancel
    /// token and fault plan are attached).
    fn base_budget(&self, rung: Rung) -> Budget {
        match rung {
            Rung::Exact => Budget::default(),
            Rung::Budgeted { wall_ms } => Budget::wall_ms(wall_ms),
            // The baseline still gets a generous cooperative cap so a
            // pathological rbf materialisation degrades instead of
            // hanging until the watchdog fires.
            Rung::RtcBaseline => Budget::wall_ms(self.budget_ms.max(1)),
        }
    }
}

/// Runs one job down the retry/degrade ladder and reports full
/// provenance. Never panics and never blocks past
/// `rungs × (timeout + grace)`.
pub fn run_supervised(spec: &JobSpec, cfg: &SupervisorConfig) -> JobOutcome {
    let started = Instant::now();
    let spec = Arc::new(spec.clone());
    let mut attempts: Vec<Attempt> = Vec::new();
    let mut last_error: Option<String> = None;

    for rung in cfg.rungs() {
        let attempt = run_attempt(&spec, rung, cfg);
        let done = matches!(attempt.status, AttemptStatus::Completed);
        match &attempt.status {
            AttemptStatus::Failed { error } => last_error = Some(error.clone()),
            AttemptStatus::Panicked { message } => {
                last_error = Some(format!("panic: {message}"))
            }
            AttemptStatus::HardTimeout => {
                last_error = Some("hard timeout: attempt abandoned by the watchdog".into())
            }
            AttemptStatus::Completed => {}
        }
        let degraded = attempt.degraded;
        let output = attempt_output(&attempt);
        attempts.push(strip_output(attempt));
        if done {
            return JobOutcome {
                name: spec.name.clone(),
                status: if degraded {
                    JobStatus::Degraded
                } else {
                    JobStatus::Exact
                },
                rung: Some(rung),
                attempts,
                wall: started.elapsed(),
                output,
                error: None,
            };
        }
    }

    JobOutcome {
        name: spec.name.clone(),
        status: JobStatus::Failed,
        rung: None,
        attempts,
        wall: started.elapsed(),
        output: None,
        error: last_error.or_else(|| Some("no rung completed".into())),
    }
}

/// An attempt together with its (not yet stripped) analysis output.
struct RawAttempt {
    rung: Rung,
    status: AttemptStatus,
    degraded: bool,
    wall: Duration,
    degradations: Vec<srtw_core::Degradation>,
    output: Option<AnalysisOutput>,
}

fn attempt_output(a: &RawAttempt) -> Option<AnalysisOutput> {
    a.output.clone()
}

fn strip_output(a: RawAttempt) -> Attempt {
    Attempt {
        rung: a.rung,
        status: a.status,
        degraded: a.degraded,
        wall: a.wall,
        degradations: a.degradations,
    }
}

/// Runs one attempt at one rung behind the shared containment primitive
/// ([`contain`]), acting as its watchdog.
fn run_attempt(spec: &Arc<JobSpec>, rung: Rung, cfg: &SupervisorConfig) -> RawAttempt {
    let token = CancelToken::new();
    let mut budget = cfg.base_budget(rung).with_cancel(token.clone());
    if let Some(f) = cfg.fault {
        budget = budget.with_fault(f);
    }

    // Bridge an external batch-level cancel into this attempt's own
    // watchdog token. The budget has a single cancel slot (owned by the
    // watchdog), so a relay thread polls the external token instead.
    let relay_done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let relay = cfg.cancel.clone().map(|external| {
        let attempt_token = token.clone();
        let done = Arc::clone(&relay_done);
        std::thread::spawn(move || {
            while !done.load(std::sync::atomic::Ordering::Acquire) {
                if external.is_cancelled() {
                    attempt_token.cancel();
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    });

    let started = Instant::now();
    let job = Arc::clone(spec);
    let threads = cfg.threads;
    let contained = contain(
        &format!("srtw-{}", spec.name),
        cfg.timeout,
        cfg.grace,
        &token,
        move || analyse(&job, rung, budget, threads),
    );
    let wall = started.elapsed();
    relay_done.store(true, std::sync::atomic::Ordering::Release);
    if let Some(handle) = relay {
        let _ = handle.join();
    }

    let (status, degraded, degradations, output) = match contained {
        Contained::HardTimeout => (AttemptStatus::HardTimeout, false, Vec::new(), None),
        Contained::SpawnFailed => (
            AttemptStatus::Failed {
                error: "could not spawn worker thread".into(),
            },
            false,
            Vec::new(),
            None,
        ),
        Contained::Panicked { message } => (
            AttemptStatus::Panicked { message },
            false,
            Vec::new(),
            None,
        ),
        Contained::Completed(Err(e)) => (
            AttemptStatus::Failed {
                error: e.to_string(),
            },
            false,
            Vec::new(),
            None,
        ),
        Contained::Completed(Ok(out)) => {
            let degraded = out.any_degraded() || rung == Rung::RtcBaseline;
            let records = out.degradations();
            (AttemptStatus::Completed, degraded, records, Some(out))
        }
    };
    RawAttempt {
        rung,
        status,
        degraded,
        wall,
        degradations,
        output,
    }
}

/// The analysis an attempt at `rung` actually runs.
fn analyse(
    spec: &JobSpec,
    rung: Rung,
    budget: Budget,
    threads: usize,
) -> Result<AnalysisOutput, AnalysisError> {
    match rung {
        Rung::Exact | Rung::Budgeted { .. } => {
            let cfg = AnalysisConfig {
                budget,
                threads,
                ..Default::default()
            };
            fifo_structural(&spec.tasks, &spec.beta, &cfg).map(AnalysisOutput::Structural)
        }
        Rung::RtcBaseline => {
            fifo_rtc_with(&spec.tasks, &spec.beta, &budget).map(AnalysisOutput::Rtc)
        }
    }
}
