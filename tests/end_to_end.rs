//! Cross-crate integration tests: analysis theorems and simulation
//! soundness over randomized workloads and servers.

use srtw::{
    backlog_bound, busy_window, earliest_random_walk, fifo_rtc, fifo_structural, generate_drt,
    generate_task_set, lazy_random_walk, q, rtc_delay, simulate_fifo, structural_delay,
    structural_delay_with, witness_trace, AnalysisConfig, Curve, DrtGenConfig, PeriodicTask, Q,
    RateLatencyServer, Server, ServiceProcess, TdmaServer,
};

fn gen_cfg(vertices: usize, u: Q) -> DrtGenConfig {
    DrtGenConfig {
        vertices,
        extra_edges: vertices,
        separation_range: (4, 30),
        wcet_range: (1, 8),
        target_utilization: Some(u),
        deadline_factor: None,
    }
}

#[test]
fn theorem_stream_max_equals_rtc_randomized() {
    for seed in 0..30 {
        let task = generate_drt(&gen_cfg(3 + (seed as usize % 6), q(1, 2)), seed);
        for beta in [
            Curve::affine(Q::ZERO, Q::ONE),
            Curve::rate_latency(q(3, 4), Q::int(3)),
            TdmaServer::new(Q::int(3), Q::int(5), Q::ONE)
                .unwrap()
                .beta_lower(),
        ] {
            let s = structural_delay(&task, &beta).unwrap();
            let r = rtc_delay(&task, &beta).unwrap();
            assert_eq!(
                s.stream_bound, r.bound,
                "seed {seed}: stream max must equal the RTC bound"
            );
            for vb in &s.per_vertex {
                assert!(vb.bound <= r.bound, "seed {seed}: per-type must refine RTC");
            }
        }
    }
}

#[test]
fn simulation_never_exceeds_structural_bounds() {
    for seed in 0..12 {
        let task = generate_drt(&gen_cfg(5, q(3, 5)), 1000 + seed);
        let rate = q(4, 5);
        let beta = Curve::rate_latency(rate, Q::int(2));
        let analysis = structural_delay(&task, &beta).unwrap();
        // The fluid process at `rate` dominates the rate-latency curve.
        let service = ServiceProcess::fluid(rate);
        for trace_seed in 0..10 {
            let trace = if trace_seed % 2 == 0 {
                earliest_random_walk(&task, Q::int(400), None, seed * 100 + trace_seed)
            } else {
                lazy_random_walk(&task, Q::int(400), None, seed * 100 + trace_seed)
            };
            assert!(trace.is_legal(&task));
            let out = simulate_fifo(
                std::slice::from_ref(&task),
                std::slice::from_ref(&trace),
                &service,
            );
            for v in task.vertex_ids() {
                assert!(
                    out.max_delay_of(0, v) <= analysis.bound_of(v),
                    "seed {seed}/{trace_seed}: simulated delay exceeds bound at {v}"
                );
            }
        }
    }
}

#[test]
fn simulation_on_tdma_process_respects_tdma_analysis() {
    let task = generate_drt(&gen_cfg(4, q(2, 5)), 77);
    let server = TdmaServer::new(Q::int(3), Q::int(5), Q::ONE).unwrap();
    let analysis = structural_delay(&task, &server.beta_lower()).unwrap();
    // Every slot offset is a concrete instance dominated by the lower curve.
    for onum in 0..=4 {
        let offset = q(onum, 2);
        let service = ServiceProcess::tdma(Q::int(3), Q::int(5), Q::ONE, offset);
        for trace_seed in 0..6 {
            let trace = earliest_random_walk(&task, Q::int(300), None, trace_seed);
            let out = simulate_fifo(
                std::slice::from_ref(&task),
                std::slice::from_ref(&trace),
                &service,
            );
            for v in task.vertex_ids() {
                assert!(
                    out.max_delay_of(0, v) <= analysis.bound_of(v),
                    "offset {offset}, seed {trace_seed}: bound violated at {v}"
                );
            }
            assert!(out.max_backlog <= backlog_bound(std::slice::from_ref(&task), &server.beta_lower()).unwrap());
        }
    }
}

#[test]
fn witness_replay_meets_bound_on_fluid_server() {
    // Replaying the witness on the *rate-only* fluid server (zero latency)
    // must reach a delay between 0 and the bound; with latency folded in it
    // stays sound.
    let task = generate_drt(&gen_cfg(5, q(1, 2)), 31);
    let rate = q(3, 4);
    let beta = Curve::affine(Q::ZERO, rate);
    let analysis = structural_delay(&task, &beta).unwrap();
    for vb in &analysis.per_vertex {
        let w = vb.witness.as_ref().unwrap();
        let trace = witness_trace(&task, &w.vertices);
        let out = simulate_fifo(
            std::slice::from_ref(&task),
            std::slice::from_ref(&trace),
            &ServiceProcess::fluid(rate),
        );
        let observed = out.max_delay_of(0, vb.vertex);
        assert!(observed <= vb.bound);
        // On a fluid server the witness exactly achieves its bound: the
        // busy period never breaks (witness paths are left-saturated).
        assert_eq!(
            observed, vb.bound,
            "witness should be tight on the fluid server for {}",
            vb.label
        );
    }
}

#[test]
fn fifo_multiplex_soundness_and_refinement() {
    for seed in 0..8 {
        let tasks = generate_task_set(&gen_cfg(4, Q::ONE), 3, q(3, 5), seed);
        let beta = Curve::rate_latency(Q::ONE, Q::int(2));
        let rtc = fifo_rtc(&tasks, &beta).unwrap();
        let per = fifo_structural(&tasks, &beta, &AnalysisConfig::default()).unwrap();
        for a in &per {
            for vb in &a.per_vertex {
                assert!(vb.bound <= rtc.bound);
            }
        }
        // Simulate the multiplex on the concrete fluid link.
        let traces: Vec<_> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| earliest_random_walk(t, Q::int(250), None, seed * 17 + i as u64))
            .collect();
        let out = simulate_fifo(&tasks, &traces, &ServiceProcess::fluid(Q::ONE));
        for (si, task) in tasks.iter().enumerate() {
            for v in task.vertex_ids() {
                assert!(out.max_delay_of(si, v) <= per[si].bound_of(v));
            }
        }
    }
}

#[test]
fn horizon_fraction_endpoints_and_monotonicity() {
    let task = generate_drt(&gen_cfg(6, q(13, 20)), 5);
    let beta = Curve::rate_latency(q(9, 10), Q::int(4));
    let rtc = rtc_delay(&task, &beta).unwrap();
    let full = structural_delay(&task, &beta).unwrap();
    let mut prev_max: Option<Q> = None;
    for k in 0..=6 {
        let a = structural_delay_with(
            &task,
            &beta,
            &AnalysisConfig {
                horizon_fraction: Some(q(k, 6)),
                ..Default::default()
            },
        )
        .unwrap();
        let max = a.per_vertex.iter().map(|b| b.bound).fold(Q::ZERO, Q::max);
        if k == 0 {
            assert_eq!(max, rtc.bound);
        }
        if k == 6 {
            assert_eq!(max, full.stream_bound);
        }
        if let Some(p) = prev_max {
            assert!(max <= p, "fraction sweep must be monotone");
        }
        prev_max = Some(max);
    }
}

#[test]
fn periodic_task_closed_form() {
    // Classical single periodic task (e, p) on rate-latency (R, T) with
    // e/p < R: worst delay of the first job in the busy window is
    // max_k [T + k·e/R − (k−1)·p] over the busy window; for e=2, p=5,
    // R=1/2, T=3: k=1: 3+4=7; k=2: 3+8−5=6 … so 7.
    let t = PeriodicTask::new(Q::int(5), Q::int(2)).to_drt("p").unwrap();
    let beta = Curve::rate_latency(q(1, 2), Q::int(3));
    let a = structural_delay(&t, &beta).unwrap();
    assert_eq!(a.stream_bound, Q::int(7));
    let r = rtc_delay(&t, &beta).unwrap();
    assert_eq!(r.bound, Q::int(7));
}

#[test]
fn busy_window_covers_simulated_busy_periods() {
    let task = generate_drt(&gen_cfg(5, q(3, 5)), 11);
    let rate = q(7, 10);
    let beta = Curve::affine(Q::ZERO, rate);
    let bw = busy_window(std::slice::from_ref(&task), &beta).unwrap();
    // Simulate and verify no job completes later than release + window
    // (a weaker corollary of the busy-window bound).
    for seed in 0..10 {
        let trace = earliest_random_walk(&task, Q::int(300), None, seed);
        let out = simulate_fifo(
            std::slice::from_ref(&task),
            std::slice::from_ref(&trace),
            &ServiceProcess::fluid(rate),
        );
        for j in &out.jobs {
            assert!(j.delay() <= bw.bound, "delay beyond busy window bound");
        }
    }
}

#[test]
fn server_zoo_consistency() {
    // All servers agree: tighter service ⇒ smaller bounds.
    let task = generate_drt(&gen_cfg(5, q(2, 5)), 3);
    let servers: Vec<(String, Curve)> = vec![
        (
            "dedicated".into(),
            RateLatencyServer::dedicated_unit().beta_lower(),
        ),
        (
            "rate-latency".into(),
            Curve::rate_latency(Q::ONE, Q::int(3)),
        ),
        (
            "tdma".into(),
            TdmaServer::new(Q::int(2), Q::int(4), Q::ONE)
                .unwrap()
                .beta_lower(),
        ),
    ];
    let mut bounds = Vec::new();
    for (name, beta) in &servers {
        let a = structural_delay(&task, beta).unwrap();
        bounds.push((name.clone(), a.stream_bound));
    }
    // The dedicated unit server is at least as good as the others.
    assert!(bounds[0].1 <= bounds[1].1);
    assert!(bounds[0].1 <= bounds[2].1);
}

#[test]
fn backlog_bound_matches_curve_vdev_and_simulation() {
    let task = generate_drt(&gen_cfg(4, q(1, 2)), 9);
    let beta = Curve::rate_latency(q(3, 4), Q::int(2));
    let b = backlog_bound(std::slice::from_ref(&task), &beta).unwrap();
    let bw = busy_window(std::slice::from_ref(&task), &beta).unwrap();
    assert_eq!(b, bw.rbfs[0].curve().vdev(&beta).unwrap_finite());
    for seed in 0..8 {
        let trace = earliest_random_walk(&task, Q::int(200), None, seed);
        let out = simulate_fifo(
            std::slice::from_ref(&task),
            std::slice::from_ref(&trace),
            &ServiceProcess::fluid(q(3, 4)),
        );
        assert!(out.max_backlog <= b, "seed {seed}: backlog bound violated");
    }
}
