//! Integration tests across scheduling policies: FIFO vs fixed priority vs
//! EDF, analysis vs simulation, and the tandem (pay-bursts-only-once)
//! analysis — all on randomized generated workloads.

use srtw::{
    earliest_random_walk, edf_schedulable, fixed_priority_structural, generate_drt, q,
    simulate_edf, simulate_fixed_priority, structural_delay, tandem_delay, Curve, DrtGenConfig,
    DrtTask, Q, ServiceProcess,
};

fn gen(vertices: usize, u: Q, deadline_factor: Option<Q>, seed: u64) -> DrtTask {
    let cfg = DrtGenConfig {
        vertices,
        extra_edges: vertices,
        separation_range: (4, 25),
        wcet_range: (1, 6),
        target_utilization: Some(u),
        deadline_factor,
    };
    generate_drt(&cfg, seed)
}

#[test]
fn fp_analysis_sound_against_fp_simulation() {
    for seed in 0..8 {
        let hi = gen(4, q(3, 10), None, seed);
        let lo = gen(4, q(3, 10), None, seed + 7777);
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        let bounds = fixed_priority_structural(&[hi.clone(), lo.clone()], &beta).unwrap();
        for ts in 0..6u64 {
            let tr_hi = earliest_random_walk(&hi, Q::int(250), None, ts);
            let tr_lo = earliest_random_walk(&lo, Q::int(250), None, ts + 31);
            let out = simulate_fixed_priority(
                &[hi.clone(), lo.clone()],
                &[tr_hi, tr_lo],
                &ServiceProcess::fluid(Q::ONE),
            );
            for (si, b) in bounds.iter().enumerate() {
                for vb in &b.per_vertex {
                    assert!(
                        out.max_delay_of(si, vb.vertex) <= vb.bound,
                        "seed {seed}/{ts}: FP simulation exceeded the bound"
                    );
                }
            }
        }
    }
}

#[test]
fn edf_analysis_sound_against_edf_simulation() {
    let mut accepted = 0;
    for seed in 0..20 {
        let task = gen(5, q(1, 2), Some(Q::int(3)), 400 + seed);
        let beta = Curve::rate_latency(Q::ONE, Q::int(2));
        let verdict = match edf_schedulable(std::slice::from_ref(&task), &beta) {
            Ok(v) => v,
            Err(_) => continue,
        };
        if !verdict.schedulable {
            continue;
        }
        accepted += 1;
        // The simulation runs on the fluid instance at the guaranteed rate,
        // which dominates the rate-latency curve used by the analysis.
        for ts in 0..5u64 {
            let trace = earliest_random_walk(&task, Q::int(250), None, ts);
            let out = simulate_edf(
                std::slice::from_ref(&task),
                std::slice::from_ref(&trace),
                &ServiceProcess::fluid(Q::ONE),
            );
            for j in &out.jobs {
                let d = task.deadline(j.vertex).expect("generated with deadlines");
                assert!(
                    j.delay() <= d,
                    "seed {seed}: EDF sim missed a certified deadline"
                );
            }
        }
    }
    assert!(accepted >= 5, "test vacuous: too few accepted sets");
}

#[test]
fn edf_acceptance_dominates_fifo_structural() {
    // EDF is optimal on a fully-available uniprocessor-like resource:
    // whenever the FIFO per-type bounds meet all deadlines, the processor
    // demand criterion must also pass.
    let beta = Curve::rate_latency(Q::ONE, Q::int(2));
    let mut fifo_accepted = 0;
    for seed in 0..40 {
        let task = gen(5, q(3, 5), Some(Q::int(3)), 800 + seed);
        let fifo_ok = match structural_delay(&task, &beta) {
            Ok(a) => a.schedulable(&task),
            Err(_) => false,
        };
        if !fifo_ok {
            continue;
        }
        fifo_accepted += 1;
        let edf_ok = edf_schedulable(std::slice::from_ref(&task), &beta)
            .unwrap()
            .schedulable;
        assert!(edf_ok, "seed {seed}: EDF rejected a FIFO-certified set");
    }
    assert!(fifo_accepted >= 10, "test vacuous");
}

#[test]
fn tandem_pboo_randomized() {
    for seed in 0..10 {
        let task = gen(5, q(2, 5), None, 600 + seed);
        let hops = vec![
            Curve::rate_latency(q(4, 5), Q::int(3)),
            Curve::rate_latency(q(9, 10), Q::int(2)),
        ];
        let r = tandem_delay(&task, &hops).unwrap();
        assert!(
            r.end_to_end <= r.per_hop_sum,
            "seed {seed}: PBOO violated ({} > {})",
            r.end_to_end,
            r.per_hop_sum
        );
        // Both exceed the single-hop bound of the slowest server alone.
        let single = structural_delay(&task, &hops[0]).unwrap().stream_bound;
        assert!(r.end_to_end >= single);
    }
}

#[test]
fn fp_priority_inversion_never_helps_high_priority() {
    // Adding lower-priority tasks must not change the top task's bounds.
    for seed in 0..6 {
        let hi = gen(4, q(3, 10), None, seed);
        let lo1 = gen(3, q(1, 5), None, seed + 50);
        let lo2 = gen(3, q(1, 10), None, seed + 90);
        let beta = Curve::rate_latency(Q::ONE, Q::ONE);
        let alone = structural_delay(&hi, &beta).unwrap();
        let stacked =
            fixed_priority_structural(&[hi.clone(), lo1, lo2], &beta).unwrap();
        for (a, b) in alone.per_vertex.iter().zip(stacked[0].per_vertex.iter()) {
            assert_eq!(a.bound, b.bound, "seed {seed}: top priority perturbed");
        }
    }
}

#[test]
fn preemptive_sims_agree_with_fifo_on_single_stream() {
    // With one stream, FIFO, fixed-priority and EDF schedules coincide.
    for seed in 0..6u64 {
        let task = gen(4, q(2, 5), Some(Q::int(5)), 70 + seed);
        let trace = earliest_random_walk(&task, Q::int(200), None, seed);
        let service = ServiceProcess::fluid(Q::ONE);
        let fifo = srtw::simulate_fifo(
            std::slice::from_ref(&task),
            std::slice::from_ref(&trace),
            &service,
        );
        let fp = simulate_fixed_priority(
            std::slice::from_ref(&task),
            std::slice::from_ref(&trace),
            &service,
        );
        let edf = simulate_edf(
            std::slice::from_ref(&task),
            std::slice::from_ref(&trace),
            &service,
        );
        for ((a, b), c) in fifo.jobs.iter().zip(fp.jobs.iter()).zip(edf.jobs.iter()) {
            assert_eq!(a.completion, b.completion, "seed {seed}: FIFO vs FP");
            assert_eq!(a.completion, c.completion, "seed {seed}: FIFO vs EDF");
        }
    }
}
