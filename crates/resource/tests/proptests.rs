//! Property-based tests for server models and composition.
//!
//! Runs on the in-house seeded harness ([`srtw_detrand::prop`]); set
//! `SRTW_PROP_CASES` / `SRTW_PROP_SEED` / `SRTW_PROP_REPLAY` to control it.

use srtw_detrand::prop::forall;
use srtw_detrand::Rng;
use srtw_minplus::{Curve, Q};
use srtw_resource::{
    concatenate_upto, leftover_blind, leftover_chain, PeriodicResource, RateLatencyServer, Server,
    TdmaServer,
};

fn pos_q(rng: &mut Rng) -> Q {
    Q::new(rng.random_range(1i128..=10), rng.random_range(1i128..=3))
}

fn server_curve(rng: &mut Rng) -> Curve {
    match rng.random_range(0u32..3) {
        0 => {
            let r = pos_q(rng);
            let t = rng.random_range(0i128..=6);
            RateLatencyServer::new(r, Q::int(t)).unwrap().beta_lower()
        }
        1 => {
            let slot = rng.random_range(1i128..=3);
            let cycle = rng.random_range(4i128..=8);
            let cap = rng.random_range(1i128..=2);
            TdmaServer::new(Q::int(slot), Q::int(cycle), Q::int(cap))
                .unwrap()
                .beta_lower()
        }
        _ => {
            let p = rng.random_range(4i128..=8);
            let th = rng.random_range(1i128..=3);
            PeriodicResource::new(Q::int(p), Q::int(th.min(p)))
                .unwrap()
                .beta_lower()
        }
    }
}

fn arrival_curve(rng: &mut Rng) -> Curve {
    Curve::staircase(
        Q::int(rng.random_range(3i128..=10)),
        Q::int(rng.random_range(1i128..=4)),
    )
}

#[test]
fn lower_curves_start_at_zero_and_are_monotone() {
    forall(
        "lower_curves_start_at_zero_and_are_monotone",
        |rng, _| server_curve(rng),
        |beta| {
            assert_eq!(beta.eval(Q::ZERO), Q::ZERO);
            let mut prev = Q::ZERO;
            for i in 0..80 {
                let v = beta.eval(Q::new(i, 2));
                assert!(v >= prev);
                prev = v;
            }
        },
    );
}

#[test]
fn leftover_is_bounded_and_sound() {
    forall(
        "leftover_is_bounded_and_sound",
        |rng, _| (server_curve(rng), arrival_curve(rng)),
        |(beta, alpha)| {
            let left = leftover_blind(beta, alpha);
            for i in 0..100 {
                let t = Q::new(i, 2);
                // Leftover never exceeds the full service…
                assert!(left.eval(t) <= beta.eval(t), "leftover above β at {t}");
                // …and guarantees at least the instantaneous difference.
                assert!(
                    left.eval(t) >= (beta.eval(t) - alpha.eval(t)).clamp_nonneg(),
                    "leftover below β − α at {t}"
                );
            }
        },
    );
}

#[test]
fn leftover_chain_is_monotone_in_priority() {
    forall(
        "leftover_chain_is_monotone_in_priority",
        |rng, _| (server_curve(rng), arrival_curve(rng), arrival_curve(rng)),
        |(beta, a1, a2)| {
            let chain = leftover_chain(beta, &[a1.clone(), a2.clone()]);
            assert_eq!(chain.len(), 2);
            for i in 0..80 {
                let t = Q::new(i, 2);
                assert!(chain[1].eval(t) <= chain[0].eval(t));
            }
        },
    );
}

#[test]
fn concatenation_never_exceeds_either_hop() {
    forall(
        "concatenation_never_exceeds_either_hop",
        |rng, _| (server_curve(rng), server_curve(rng)),
        |(b1, b2)| {
            let h = Q::int(30);
            let e2e = concatenate_upto(&[b1.clone(), b2.clone()], h);
            for i in 0..60 {
                let t = Q::new(i, 2);
                assert!(e2e.eval(t) <= b1.eval(t), "e2e above hop 1 at {t}");
                assert!(e2e.eval(t) <= b2.eval(t), "e2e above hop 2 at {t}");
            }
        },
    );
}

#[test]
fn upper_curves_dominate_lower() {
    forall(
        "upper_curves_dominate_lower",
        |rng, _| {
            (
                rng.random_range(1i128..=3),
                rng.random_range(4i128..=8),
                rng.random_range(1i128..=2),
            )
        },
        |&(slot, cycle, cap)| {
            let s = TdmaServer::new(Q::int(slot), Q::int(cycle), Q::int(cap)).unwrap();
            assert!(s.beta_lower().dominated_by(&s.beta_upper()));
            let p = PeriodicResource::new(Q::int(cycle), Q::int(slot.min(cycle))).unwrap();
            assert!(p.beta_lower().dominated_by(&p.beta_upper()));
        },
    );
}
