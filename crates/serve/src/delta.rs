//! `POST /analyze/delta` — incremental re-analysis of an edited system.
//!
//! The body is a base `.srtw` system, a separator line `@delta`, and an
//! edit script, one edit per line:
//!
//! ```text
//! wcet TASK VERTEX Q          # change a vertex's WCET
//! deadline TASK VERTEX Q|none # change or drop a vertex's deadline
//! sep TASK FROM TO Q          # change an edge's separation
//! add-edge TASK FROM TO Q     # add an edge
//! del-edge TASK FROM TO       # remove an edge
//! server KIND key=value …     # swap the service curve
//! ```
//!
//! The response **body** is byte-identical (modulo `runtime_secs`) to a
//! cold `POST /analyze` of the edited system — incrementality is purely
//! an execution strategy, surfaced only in the `X-Delta-Reuse` response
//! header and the `/stats` counters.
//!
//! # The conservative dependency cut
//!
//! In the FIFO analysis a stream's result depends on (a) its own task,
//! (b) the system busy window, and (c) the *other* streams' rbfs over
//! that window. An unedited stream may therefore reuse its cached
//! analysis only when the edit provably left all three unchanged. The
//! cut re-analyses the edited streams, then checks that the busy-window
//! bound and utilization match the cached base run and that each edited
//! task's rbf staircase is unchanged over the horizon (deadline edits
//! are the canonical case: rbf-invariant, so everything but the edited
//! stream replays). Any failed check — or a metered request (wall
//! deadline, injected fault, drain cancel), where budget ticks must
//! replay exactly — falls back to re-analysing every stream
//! (`delta_full_fallbacks` in `/stats`), still warm-started from the
//! promoted rbf memo when unmetered.

use crate::cache::CacheKey;
use crate::http::{Request, Response};
use crate::report::{fifo_report, fifo_report_with_memo, FifoReport};
use crate::server::{error_body, parse_error_response, Shared};
use srtw_core::textfmt::{parse_system, ServerSpec, SystemSpec};
use srtw_core::{
    fifo_rtc_with, fifo_structural_subset, AnalysisConfig, AnalysisError, Json,
};
use srtw_minplus::{Budget, BudgetMeter, CancelToken, Q};
use srtw_supervisor::{contain, Contained};
use srtw_workload::{canonical_task_form, DrtTaskBuilder, Rbf, RbfMemo};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// One parsed edit line.
#[derive(Debug, Clone)]
pub(crate) enum Edit {
    /// `wcet TASK VERTEX Q`
    Wcet { task: String, vertex: String, value: Q },
    /// `deadline TASK VERTEX Q|none`
    Deadline {
        task: String,
        vertex: String,
        value: Option<Q>,
    },
    /// `sep TASK FROM TO Q`
    Sep {
        task: String,
        from: String,
        to: String,
        value: Q,
    },
    /// `add-edge TASK FROM TO Q`
    AddEdge {
        task: String,
        from: String,
        to: String,
        value: Q,
    },
    /// `del-edge TASK FROM TO`
    DelEdge {
        task: String,
        from: String,
        to: String,
    },
    /// `server KIND key=value …`
    Server(ServerSpec),
}

/// An edit-script error with the 1-based line it points at (within the
/// edit section, after the `@delta` separator).
#[derive(Debug)]
pub(crate) struct DeltaError {
    pub line: usize,
    pub message: String,
}

impl DeltaError {
    fn at(line: usize, message: impl Into<String>) -> DeltaError {
        DeltaError {
            line,
            message: message.into(),
        }
    }
}

/// Splits a delta body at the first line consisting of `@delta`.
pub(crate) fn split_delta(text: &str) -> Option<(&str, &str)> {
    let mut offset = 0;
    for line in text.split_inclusive('\n') {
        if line.trim_end_matches(['\r', '\n']) == "@delta" {
            return Some((&text[..offset], &text[offset + line.len()..]));
        }
        offset += line.len();
    }
    None
}

/// Parses the edit section (one edit per non-empty, non-`#` line).
pub(crate) fn parse_edits(text: &str) -> Result<Vec<Edit>, DeltaError> {
    let mut edits = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        let kw = words.next().expect("non-empty line has a word");
        let mut need = |what: &str| {
            words
                .next()
                .map(str::to_string)
                .ok_or_else(|| DeltaError::at(lineno, format!("{kw} needs {what}")))
        };
        let parse_q = |s: &str| {
            s.parse::<Q>()
                .map_err(|_| DeltaError::at(lineno, format!("invalid rational '{s}'")))
        };
        let edit = match kw {
            "wcet" => {
                let (task, vertex, v) = (need("a task")?, need("a vertex")?, need("a value")?);
                Edit::Wcet {
                    task,
                    vertex,
                    value: parse_q(&v)?,
                }
            }
            "deadline" => {
                let (task, vertex, v) = (need("a task")?, need("a vertex")?, need("a value")?);
                Edit::Deadline {
                    task,
                    vertex,
                    value: if v == "none" { None } else { Some(parse_q(&v)?) },
                }
            }
            "sep" | "add-edge" => {
                let (task, from, to, v) = (
                    need("a task")?,
                    need("a source vertex")?,
                    need("a target vertex")?,
                    need("a separation")?,
                );
                let value = parse_q(&v)?;
                if kw == "sep" {
                    Edit::Sep {
                        task,
                        from,
                        to,
                        value,
                    }
                } else {
                    Edit::AddEdge {
                        task,
                        from,
                        to,
                        value,
                    }
                }
            }
            "del-edge" => Edit::DelEdge {
                task: need("a task")?,
                from: need("a source vertex")?,
                to: need("a target vertex")?,
            },
            "server" => {
                // Reuse the system grammar's server parser by wrapping
                // the line in a minimal synthetic system.
                let synthetic = format!("task _delta\nvertex _v wcet=1\n{line}\n");
                let spec = parse_system(&synthetic)
                    .map_err(|e| DeltaError::at(lineno, e.message))?;
                Edit::Server(spec.server.expect("synthetic system declares a server"))
            }
            other => {
                return Err(DeltaError::at(
                    lineno,
                    format!("unknown edit keyword '{other}'"),
                ))
            }
        };
        if words.next().is_some() {
            return Err(DeltaError::at(lineno, format!("trailing words after {kw}")));
        }
        edits.push(edit);
    }
    if edits.is_empty() {
        return Err(DeltaError::at(1, "edit script declares no edits"));
    }
    Ok(edits)
}

/// The result of applying an edit script to a parsed base system.
pub(crate) struct AppliedDelta {
    /// The edited system.
    pub system: SystemSpec,
    /// Sorted, deduplicated indices of tasks an edit touched.
    pub edited_tasks: Vec<usize>,
    /// `true` when a `server` edit changed the service curve.
    pub server_changed: bool,
}

/// Applies `edits` to `base`, rebuilding each touched task through
/// [`DrtTaskBuilder`] (so edited tasks revalidate all model invariants).
pub(crate) fn apply_edits(base: &SystemSpec, edits: &[Edit]) -> Result<AppliedDelta, DeltaError> {
    // Mutable task representation: (label, wcet, deadline) + edge list.
    struct Draft {
        vertices: Vec<(String, Q, Option<Q>)>,
        edges: Vec<(usize, usize, Q)>,
    }
    let mut drafts: Vec<Draft> = base
        .tasks
        .iter()
        .map(|t| Draft {
            vertices: t
                .vertex_ids()
                .map(|v| (t.vertex(v).label.clone(), t.wcet(v), t.deadline(v)))
                .collect(),
            edges: t
                .vertex_ids()
                .flat_map(|v| {
                    t.out_edges(v)
                        .iter()
                        .map(move |e| (v.index(), e.to.index(), e.separation))
                })
                .collect(),
        })
        .collect();

    let mut edited_tasks = Vec::new();
    let mut server = base.server;
    let mut server_changed = false;

    for (i, edit) in edits.iter().enumerate() {
        let lineno = i + 1;
        let find_task = |name: &str| {
            base.tasks
                .iter()
                .position(|t| t.name() == name)
                .ok_or_else(|| DeltaError::at(lineno, format!("unknown task '{name}'")))
        };
        let find_vertex = |draft: &Draft, label: &str| {
            draft
                .vertices
                .iter()
                .position(|(l, _, _)| l == label)
                .ok_or_else(|| DeltaError::at(lineno, format!("unknown vertex '{label}'")))
        };
        match edit {
            Edit::Wcet {
                task,
                vertex,
                value,
            } => {
                let t = find_task(task)?;
                let v = find_vertex(&drafts[t], vertex)?;
                drafts[t].vertices[v].1 = *value;
                edited_tasks.push(t);
            }
            Edit::Deadline {
                task,
                vertex,
                value,
            } => {
                let t = find_task(task)?;
                let v = find_vertex(&drafts[t], vertex)?;
                drafts[t].vertices[v].2 = *value;
                edited_tasks.push(t);
            }
            Edit::Sep {
                task,
                from,
                to,
                value,
            } => {
                let t = find_task(task)?;
                let f = find_vertex(&drafts[t], from)?;
                let to_i = find_vertex(&drafts[t], to)?;
                let edge = drafts[t]
                    .edges
                    .iter_mut()
                    .find(|(ef, et, _)| *ef == f && *et == to_i)
                    .ok_or_else(|| DeltaError::at(lineno, format!("no edge {from} -> {to}")))?;
                edge.2 = *value;
                edited_tasks.push(t);
            }
            Edit::AddEdge {
                task,
                from,
                to,
                value,
            } => {
                let t = find_task(task)?;
                let f = find_vertex(&drafts[t], from)?;
                let to_i = find_vertex(&drafts[t], to)?;
                if drafts[t].edges.iter().any(|(ef, et, _)| *ef == f && *et == to_i) {
                    return Err(DeltaError::at(
                        lineno,
                        format!("edge {from} -> {to} already exists"),
                    ));
                }
                drafts[t].edges.push((f, to_i, *value));
                edited_tasks.push(t);
            }
            Edit::DelEdge { task, from, to } => {
                let t = find_task(task)?;
                let f = find_vertex(&drafts[t], from)?;
                let to_i = find_vertex(&drafts[t], to)?;
                let before = drafts[t].edges.len();
                drafts[t].edges.retain(|(ef, et, _)| !(*ef == f && *et == to_i));
                if drafts[t].edges.len() == before {
                    return Err(DeltaError::at(lineno, format!("no edge {from} -> {to}")));
                }
                edited_tasks.push(t);
            }
            Edit::Server(spec) => {
                server_changed = server_changed || server != Some(*spec);
                server = Some(*spec);
            }
        }
    }
    edited_tasks.sort_unstable();
    edited_tasks.dedup();

    // Rebuild edited tasks only; untouched tasks are shared as-is, which
    // keeps their canonical task hashes (and thus memo promotion)
    // byte-for-byte identical to the base parse.
    let mut tasks = base.tasks.clone();
    for &t in &edited_tasks {
        let draft = &drafts[t];
        let mut b = DrtTaskBuilder::new(base.tasks[t].name());
        let ids: Vec<_> = draft
            .vertices
            .iter()
            .map(|(label, wcet, deadline)| match deadline {
                Some(d) => b.vertex_with_deadline(label.clone(), *wcet, *d),
                None => b.vertex(label.clone(), *wcet),
            })
            .collect();
        for &(f, to, sep) in &draft.edges {
            b.edge(ids[f], ids[to], sep);
        }
        tasks[t] = b
            .build()
            .map_err(|e| DeltaError::at(1, format!("edited task is invalid: {e}")))?;
    }
    Ok(AppliedDelta {
        system: SystemSpec { tasks, server },
        edited_tasks,
        server_changed,
    })
}

/// `true` when two rbfs bound the same staircase over the same horizon —
/// compared on semantic content (points, horizon, exactness), not on the
/// exploration statistics `PartialEq` would also require.
fn rbf_equal(a: &Rbf, b: &Rbf) -> bool {
    a.truncated().is_none()
        && b.truncated().is_none()
        && a.horizon() == b.horizon()
        && a.points() == b.points()
}

/// What the contained delta computation produced.
struct DeltaOutcome {
    report: FifoReport,
    /// Streams spliced from the cached base report.
    reused: usize,
    /// Streams re-analysed this request.
    reanalysed: usize,
    /// `true` when the conservative cut could not prove reuse safe and
    /// every stream was re-analysed.
    full_fallback: bool,
}

#[allow(clippy::too_many_arguments)]
fn run_delta_with_base_tasks(
    system: &SystemSpec,
    base_tasks: &[srtw_workload::DrtTask],
    beta: &srtw_minplus::Curve,
    cfg: &AnalysisConfig,
    memo: &RbfMemo,
    base_report: Option<&FifoReport>,
    edited: &[usize],
    server_changed: bool,
) -> Result<DeltaOutcome, AnalysisError> {
    let n = system.tasks.len();
    let full = |report: FifoReport| DeltaOutcome {
        report,
        reused: 0,
        reanalysed: n,
        full_fallback: true,
    };

    let splice_possible = matches!(base_report, Some(base)
        if !server_changed && base.per.len() == n && !edited.is_empty() && edited.len() < n);
    if !splice_possible {
        return Ok(full(fifo_report_with_memo(&system.tasks, beta, cfg, memo)?));
    }
    let base = base_report.expect("splice_possible implies a base report");

    // Re-analyse the edited streams (this also computes the edited
    // system's busy window and all rbfs into the warm memo).
    let subset = fifo_structural_subset(&system.tasks, beta, cfg, memo, edited)?;

    // Conservative cut: unedited streams may be spliced from the base
    // report only when their analysis inputs provably match — same busy
    // window, same utilization, and unchanged rbf staircases for every
    // edited task over that window.
    let anchor = &base.per[0];
    let cut_safe = subset.iter().all(|a| {
        a.busy_window == anchor.busy_window && a.utilization == anchor.utilization
    }) && {
        let meter = BudgetMeter::new(&cfg.budget);
        let horizon = subset[0].busy_window;
        edited.iter().all(|&i| {
            // `memo` already holds the edited task's rbf (the subset run
            // computed it); the base task's rbf is recomputed fresh.
            let edited_rbf = memo.get_or_compute(i, &system.tasks[i], horizon, &meter, cfg.threads);
            let base_rbf =
                Rbf::compute_metered_threads(&base_tasks[i], horizon, &meter, cfg.threads);
            rbf_equal(&edited_rbf, &base_rbf)
        })
    };
    if !cut_safe {
        return Ok(full(fifo_report_with_memo(&system.tasks, beta, cfg, memo)?));
    }

    // Splice: unedited streams from the cached base run, edited streams
    // from the subset re-analysis, baseline recomputed (it is cheap and
    // depends on the edited task's rbf).
    let mut per = base.per.clone();
    for (k, &i) in edited.iter().enumerate() {
        per[i] = subset[k].clone();
    }
    let rtc = fifo_rtc_with(&system.tasks, beta, &cfg.budget)?;
    Ok(DeltaOutcome {
        report: FifoReport { per, rtc },
        reused: n - edited.len(),
        reanalysed: edited.len(),
        full_fallback: false,
    })
}

pub(crate) fn analyze_delta(shared: &Shared, req: &Request) -> Response {
    let fail = |shared: &Shared, resp: Response| {
        shared.stats.failed.fetch_add(1, Ordering::Relaxed);
        resp
    };
    let bad = |shared: &Shared, message: &str, extra: Vec<(&str, Json)>| {
        fail(
            shared,
            Response::json(400, error_body(2, "input", message, extra)),
        )
    };

    let Ok(text) = std::str::from_utf8(&req.body) else {
        return bad(shared, "request body is not UTF-8", vec![]);
    };
    let deadline_ms = match req.header("x-deadline-ms") {
        None => shared.cfg.default_deadline_ms,
        Some(v) => match v.parse::<u64>() {
            Ok(ms) => Some(ms),
            Err(_) => {
                return bad(
                    shared,
                    &format!("bad X-Deadline-Ms '{v}': expected milliseconds"),
                    vec![],
                )
            }
        },
    };
    let Some((base_text, edit_text)) = split_delta(text) else {
        return bad(
            shared,
            "delta body needs a '@delta' line separating the base system from the edits",
            vec![],
        );
    };
    let base_sys = match parse_system(base_text) {
        Ok(sys) => sys,
        Err(e) => return fail(shared, parse_error_response(&e)),
    };
    let edits = match parse_edits(edit_text) {
        Ok(edits) => edits,
        Err(e) => {
            return bad(
                shared,
                &format!("bad edit script: {}", e.message),
                vec![("edit_line", Json::Int(e.line as i128))],
            )
        }
    };
    let applied = match apply_edits(&base_sys, &edits) {
        Ok(applied) => applied,
        Err(e) => {
            return bad(
                shared,
                &format!("edit does not apply: {}", e.message),
                vec![("edit_line", Json::Int(e.line as i128))],
            )
        }
    };
    let system = applied.system;
    let beta = match &system.server {
        None => {
            return bad(
                shared,
                "the edited system declares no server (add a 'server …' line or edit)",
                vec![],
            )
        }
        Some(s) => match s.beta_lower() {
            Ok(beta) => beta,
            Err(e) => return fail(shared, parse_error_response(&e)),
        },
    };

    let threads = shared.cfg.threads.max(1);
    let form = system.canonical_form();
    let presentation = system.presentation_digest();
    let key = CacheKey {
        canon: form.hash(),
        deadline_ms,
        threads,
    };
    let cacheable = shared.cfg.fault.is_none();

    // Fast path: the edited system itself is already cached.
    if cacheable {
        if let Some(hit) = shared.cache.lookup(&key, &form, presentation) {
            shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            let n = system.tasks.len();
            let mut resp = Response::json(200, hit.body);
            resp.headers.push((
                "X-Delta-Reuse",
                format!("reused={n};reanalysed=0;full_fallback=false;source=cache"),
            ));
            return resp;
        }
        shared.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    let token = CancelToken::new();
    let hard_cancel = shared.hard_cancel.load(Ordering::Relaxed);
    if hard_cancel {
        token.cancel();
    }
    shared.register(token.clone());
    let mut budget = Budget::default().with_cancel(token.clone());
    if let Some(ms) = deadline_ms {
        budget = budget.with_wall_ms(ms);
    }
    if let Some(f) = shared.cfg.fault {
        budget = budget.with_fault(f);
    }
    let cfg = AnalysisConfig {
        budget,
        threads,
        ..Default::default()
    };

    // Metered requests (wall deadline, injected fault, drain cancel) run
    // the fully cold path: budget ticks must land on the same operations
    // as a cold `/analyze` of the edited system, so no warm memo and no
    // splicing. That *is* the full fallback.
    let metered = deadline_ms.is_some() || shared.cfg.fault.is_some() || hard_cancel;

    let base_key = CacheKey {
        canon: base_sys.canonical_form().hash(),
        deadline_ms,
        threads,
    };
    let base_hit = if cacheable && !metered {
        shared.cache.lookup(
            &base_key,
            &base_sys.canonical_form(),
            base_sys.presentation_digest(),
        )
    } else {
        None
    };

    let memo = Arc::new(if metered {
        RbfMemo::new(0)
    } else {
        shared
            .memo_store
            .warm(&task_hashes(&system.tasks))
    });
    let contained = {
        let memo = Arc::clone(&memo);
        let tasks_base = base_sys.tasks.clone();
        let system = SystemSpec {
            tasks: system.tasks.clone(),
            server: system.server,
        };
        let beta = beta.clone();
        let cfg = cfg.clone();
        let edited = applied.edited_tasks.clone();
        let server_changed = applied.server_changed;
        // A warm-loaded base entry has a verbatim body but no structured
        // report; splicing then falls back to a full recompute, which is
        // byte-identical by construction.
        let base_report = base_hit.as_ref().and_then(|h| h.report.clone());
        contain(
            "srtw-serve-delta",
            None,
            shared.cfg.grace,
            &token,
            move || {
                if metered {
                    return fifo_report(&system.tasks, &beta, &cfg).map(|report| DeltaOutcome {
                        reused: 0,
                        reanalysed: system.tasks.len(),
                        full_fallback: true,
                        report,
                    });
                }
                run_delta_with_base_tasks(
                    &system,
                    &tasks_base,
                    &beta,
                    &cfg,
                    &memo,
                    base_report.as_ref(),
                    &edited,
                    server_changed,
                )
            },
        )
    };
    shared.unregister(&token);

    match contained {
        Contained::Completed(Ok(outcome)) => {
            if outcome.full_fallback {
                shared
                    .stats
                    .delta_full_fallbacks
                    .fetch_add(1, Ordering::Relaxed);
            }
            if outcome.report.degraded() {
                shared.stats.degraded.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            }
            let body = format!("{}\n", outcome.report.to_json());
            if !metered {
                shared
                    .memo_store
                    .promote(&task_hashes(&system.tasks), &memo);
                if cacheable && !outcome.report.degraded() {
                    shared.cache_insert(key, form, presentation, &body, outcome.report.clone());
                }
            }
            let mut resp = Response::json(200, body);
            resp.headers.push((
                "X-Delta-Reuse",
                format!(
                    "reused={};reanalysed={};rbf_memo_hits={};full_fallback={}",
                    outcome.reused,
                    outcome.reanalysed,
                    memo.hits(),
                    outcome.full_fallback
                ),
            ));
            resp
        }
        Contained::Completed(Err(e)) => fail(
            shared,
            Response::json(500, error_body(3, "internal", &e.to_string(), vec![])),
        ),
        Contained::Panicked { message } => fail(
            shared,
            Response::json(
                500,
                error_body(3, "panic", &format!("analysis panicked: {message}"), vec![]),
            ),
        ),
        Contained::HardTimeout => fail(
            shared,
            Response::json(
                500,
                error_body(
                    3,
                    "internal",
                    "hard timeout: request abandoned by the watchdog",
                    vec![],
                ),
            ),
        ),
        Contained::SpawnFailed => fail(
            shared,
            Response::json(500, error_body(3, "internal", "could not spawn the analysis thread", vec![])),
        ),
    }
}

/// Per-task canonical hashes, in task order.
pub(crate) fn task_hashes(tasks: &[srtw_workload::DrtTask]) -> Vec<u128> {
    tasks.iter().map(|t| canonical_task_form(t).hash()).collect()
}
