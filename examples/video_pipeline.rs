//! A video decoder on a TDMA-arbitrated accelerator.
//!
//! ```text
//! cargo run --example video_pipeline
//! ```
//!
//! The decoder processes a GOP-structured stream — heavy I-frames, medium
//! P-frames, light B-frames — modelled as a digraph task, and runs in a
//! TDMA slot of a shared accelerator. The structural analysis shows why
//! the per-frame-type bounds matter: B-frames have much tighter deadlines
//! than the stream-wide worst case would allow, and only the structural
//! analysis can certify them.

use srtw::{
    rtc_delay, structural_delay, DrtTaskBuilder, Q, Server, TdmaServer,
};

fn main() {
    // GOP structure I B B P B B P …, frame period 5 (time unit: ms/10).
    // The digraph: I → B → B → P, P → B, B → P, P → I (GOP restart).
    let mut b = DrtTaskBuilder::new("h264-decoder");
    let i = b.vertex_with_deadline("I-frame", Q::int(12), Q::int(60));
    let p = b.vertex_with_deadline("P-frame", Q::int(6), Q::int(35));
    let bb = b.vertex_with_deadline("B-frame", Q::int(3), Q::int(25));
    let period = Q::int(15);
    b.edge(i, bb, period);
    b.edge(bb, bb, period);
    b.edge(bb, p, period);
    b.edge(p, bb, period);
    b.edge(p, i, Q::int(45)); // a GOP lasts at least 3 frame slots more
    let task = b.build().expect("valid decoder graph");

    // The accelerator: the decoder owns 9 of every 16 time units.
    let server = TdmaServer::new(Q::int(9), Q::int(16), Q::ONE).expect("valid TDMA");
    let beta = server.beta_lower();
    println!("server: {}", server.describe());

    let structural = structural_delay(&task, &beta).expect("stable");
    let baseline = rtc_delay(&task, &beta).expect("stable");

    println!("\n{structural}\n");
    println!("RTC baseline (one bound for every frame type): {baseline}\n");

    // Schedulability verdicts.
    println!("frame-type verdicts (structural):");
    let mut rtc_ok = true;
    for vb in &structural.per_vertex {
        let d = task.deadline(vb.vertex).expect("deadlines set");
        let ok = vb.bound <= d;
        println!(
            "  {:<8} bound {:>6}  deadline {:>4}  {}",
            vb.label,
            vb.bound.to_string(),
            d.to_string(),
            if ok { "OK" } else { "MISS" }
        );
        if baseline.bound > d {
            rtc_ok = false;
        }
    }
    println!(
        "\nstructural analysis schedulable: {}",
        structural.schedulable(&task)
    );
    println!("RTC baseline schedulable:        {rtc_ok}");
    println!(
        "\n→ the arrival-curve abstraction must certify every frame type \
         against the stream-wide bound {}, and fails on the tight B-frame \
         deadline; the structural analysis attributes the heavy-path delay \
         to the I-frame only.",
        baseline.bound
    );
    assert!(structural.schedulable(&task));
    assert!(!rtc_ok, "expected the baseline to be insufficient here");
}
