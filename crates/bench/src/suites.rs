//! The benchmark suites behind `BENCH_1.json`: the same workloads the old
//! criterion benches measured, expressed against [`crate::timing::Timer`].
//!
//! Each suite function is callable from both the `cargo bench` wrappers in
//! `benches/` and the `experiments` binary, so one entry point regenerates
//! every recorded number.

use crate::timing::{Sample, Timer};
use srtw_core::{rtc_delay, structural_delay, structural_delay_with, AnalysisConfig, Budget};
use srtw_gen::{adversarial_dense, generate_drt, rescale_utilization, DrtGenConfig};
use srtw_minplus::{q, Curve, Q};
use srtw_sim::{earliest_random_walk, simulate_fifo, ServiceProcess};
use srtw_workload::Rbf;
use std::hint::black_box;

fn gen_cfg(n: usize) -> DrtGenConfig {
    DrtGenConfig {
        vertices: n,
        extra_edges: n,
        separation_range: (5, 40),
        wcet_range: (1, 9),
        target_utilization: Some(q(3, 5)),
        deadline_factor: None,
    }
}

/// B1 — (min,+) operator micro-benchmarks: convolution, deconvolution,
/// deviations, and pointwise ops on representative curve pairs.
pub fn convolution_suite(t: &Timer) -> Vec<Sample> {
    let mut out = Vec::new();
    for &h in &[20i128, 50, 100, 200] {
        let a = Curve::staircase(Q::int(4), Q::int(3));
        let b = Curve::rate_latency(q(3, 4), Q::int(5));
        out.push(t.bench("convolution", format!("conv_upto/{h}"), || {
            black_box(a.conv_upto(&b, Q::int(h)));
        }));
    }
    for &h in &[10i128, 20, 40] {
        let a = Curve::staircase(Q::int(5), Q::int(2));
        let b = Curve::rate_latency(Q::ONE, Q::int(3));
        out.push(t.bench("convolution", format!("deconv/{h}"), || {
            black_box(a.deconv(&b, Q::int(h)).unwrap());
        }));
    }
    {
        let alpha = Curve::staircase(Q::int(7), Q::int(3));
        let beta = Curve::rate_latency(q(2, 3), Q::int(4));
        out.push(t.bench("convolution", "hdev_staircase_vs_rate_latency", || {
            black_box(alpha.hdev(&beta));
        }));
    }
    {
        let a = Curve::staircase(Q::int(4), Q::int(3));
        let b = Curve::staircase(Q::int(6), Q::int(2));
        out.push(t.bench("convolution", "pointwise_min_periodic_pair", || {
            black_box(a.pointwise_min(&b));
        }));
        let beta = Curve::rate_latency(Q::int(2), Q::int(3));
        out.push(t.bench("convolution", "sub_clamped_monotone_leftover", || {
            black_box(beta.sub_clamped_monotone(&a));
        }));
    }
    out
}

/// B2 — request-bound-function computation across graph sizes and
/// horizons (the dominance-pruned path exploration).
pub fn rbf_suite(t: &Timer) -> Vec<Sample> {
    let mut out = Vec::new();
    for &n in &[5usize, 10, 20, 40] {
        let task = generate_drt(&gen_cfg(n), 42);
        out.push(t.bench("rbf", format!("rbf_by_graph_size/{n}"), || {
            black_box(Rbf::compute(&task, Q::int(200)));
        }));
    }
    let task = generate_drt(&gen_cfg(10), 7);
    for &h in &[100i128, 300, 1000] {
        out.push(t.bench("rbf", format!("rbf_by_horizon/{h}"), || {
            black_box(Rbf::compute(&task, Q::int(h)));
        }));
    }
    out
}

/// B3 — the structural delay analysis end to end: scaling with graph size
/// and the effect of dominance pruning (the ablation measures).
pub fn structural_suite(t: &Timer) -> Vec<Sample> {
    let mut out = Vec::new();
    let beta = Curve::rate_latency(q(4, 5), Q::int(4));
    for &n in &[5usize, 10, 20, 40] {
        let task = generate_drt(&gen_cfg(n), 11);
        out.push(t.bench("structural", format!("structural_scaling/{n}"), || {
            black_box(structural_delay(&task, &beta).unwrap());
        }));
    }
    let task = generate_drt(&gen_cfg(6), 3);
    out.push(t.bench("structural", "structural_pruned", || {
        black_box(structural_delay(&task, &beta).unwrap());
    }));
    let cfg = AnalysisConfig {
        no_prune: true,
        ..Default::default()
    };
    out.push(t.bench("structural", "structural_no_prune", || {
        black_box(structural_delay_with(&task, &beta, &cfg).unwrap());
    }));
    out.push(t.bench("structural", "rtc_baseline", || {
        black_box(rtc_delay(&task, &beta).unwrap());
    }));
    out
}

/// B4 — simulator throughput: jobs per second on fluid and TDMA service
/// processes.
pub fn simulation_suite(t: &Timer) -> Vec<Sample> {
    let mut out = Vec::new();
    let task = generate_drt(&gen_cfg(8), 9);
    for &h in &[200i128, 1000, 4000] {
        let trace = earliest_random_walk(&task, Q::int(h), None, 5);
        let fluid = ServiceProcess::fluid(q(4, 5));
        out.push(t.bench("simulation", format!("simulate_fifo/fluid/{h}"), || {
            black_box(simulate_fifo(
                std::slice::from_ref(&task),
                std::slice::from_ref(&trace),
                &fluid,
            ));
        }));
        let tdma = ServiceProcess::tdma(Q::int(4), Q::int(5), Q::ONE, Q::ONE);
        out.push(t.bench("simulation", format!("simulate_fifo/tdma/{h}"), || {
            black_box(simulate_fifo(
                std::slice::from_ref(&task),
                std::slice::from_ref(&trace),
                &tdma,
            ));
        }));
    }
    out
}

/// B5 — budgeted analysis: cooperative-metering overhead on runs that
/// never trip (the whole budget machinery must cost only a few percent
/// over the unmetered engine) and the cost of graceful degradation once
/// a path cap does trip.
pub fn budgeted_suite(t: &Timer) -> Vec<Sample> {
    let mut out = Vec::new();
    let beta = Curve::rate_latency(q(4, 5), Q::int(4));
    for &n in &[10usize, 20] {
        let task = generate_drt(&gen_cfg(n), 11);
        out.push(t.bench("budgeted_structural", format!("unmetered/{n}"), || {
            black_box(structural_delay(&task, &beta).unwrap());
        }));
        // Full metering — wall clock plus both counters — with enough
        // headroom that nothing ever trips: pure metering overhead.
        let cfg = AnalysisConfig {
            budget: Budget::wall_ms(3_600_000)
                .with_max_paths(u64::MAX / 2)
                .with_max_segments(u64::MAX / 2),
            ..Default::default()
        };
        out.push(t.bench("budgeted_structural", format!("metered_headroom/{n}"), || {
            black_box(structural_delay_with(&task, &beta, &cfg).unwrap());
        }));
    }
    // Degradation cost: a dense adversarial graph at utilization 1/2 on a
    // rate-2 server, with a path cap that trips immediately vs late.
    let adv = rescale_utilization(&adversarial_dense(6, 5), q(1, 2));
    let beta2 = Curve::rate_latency(Q::int(2), Q::int(2));
    for &cap in &[4u64, 64] {
        let cfg = AnalysisConfig {
            budget: Budget::default().with_max_paths(cap),
            ..Default::default()
        };
        out.push(t.bench("budgeted_structural", format!("degraded_cap/{cap}"), || {
            black_box(structural_delay_with(&adv, &beta2, &cfg).unwrap());
        }));
    }
    out
}

/// Runs all five suites in order (convolution, rbf, structural,
/// simulation, budgeted).
pub fn all_suites(t: &Timer) -> Vec<Sample> {
    let mut out = convolution_suite(t);
    out.extend(rbf_suite(t));
    out.extend(structural_suite(t));
    out.extend(simulation_suite(t));
    out.extend(budgeted_suite(t));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_suite_produces_entries_fast() {
        let t = Timer::fast();
        assert_eq!(convolution_suite(&t).len(), 10);
        assert_eq!(rbf_suite(&t).len(), 7);
        assert_eq!(structural_suite(&t).len(), 7);
        assert_eq!(simulation_suite(&t).len(), 6);
        assert_eq!(budgeted_suite(&t).len(), 6);
    }
}
