//! Demand-bound functions of digraph real-time tasks.
//!
//! The **demand-bound function** `dbf(t)` is the maximum total WCET of
//! jobs that a single behaviour can release *and* require completed inside
//! any window of length `t`: only jobs whose absolute deadline also falls
//! within the window count. It is the exact interface of EDF
//! schedulability (processor-demand criterion): a workload is
//! EDF-schedulable on service `β` iff `dbf(t) ≤ β(t)` for all `t` up to
//! the busy-window bound.
//!
//! Computation follows the demand-triple technique: abstract paths carry
//! `(span, latest_deadline, work)` where `latest_deadline` is the largest
//! `release + deadline` along the path; a path contributes `work` to
//! `dbf(t)` iff `latest_deadline ≤ t`. Triples are pruned by 3-dimensional
//! Pareto dominance per end vertex, which is preserved under path
//! extension.

use crate::digraph::{DrtTask, VertexId};
use srtw_minplus::Q;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One abstract demand triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Triple {
    span: Q,
    latest_deadline: Q,
    work: Q,
    vertex: VertexId,
}

impl Ord for Triple {
    fn cmp(&self, other: &Triple) -> Ordering {
        // Min-heap by span (reversed for BinaryHeap).
        other
            .span
            .cmp(&self.span)
            .then(self.work.cmp(&other.work))
            .then(other.latest_deadline.cmp(&self.latest_deadline))
            .then(self.vertex.cmp(&other.vertex).reverse())
    }
}

impl PartialOrd for Triple {
    fn partial_cmp(&self, other: &Triple) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The demand-bound function of a task, materialized up to a horizon.
///
/// Every vertex must carry a deadline (use
/// [`crate::DrtTaskBuilder::vertex_with_deadline`] or
/// [`crate::DrtTaskBuilder::set_deadline`]).
///
/// # Examples
///
/// ```
/// use srtw_workload::{Dbf, DrtTaskBuilder};
/// use srtw_minplus::Q;
///
/// let mut b = DrtTaskBuilder::new("p");
/// let v = b.vertex_with_deadline("job", Q::int(2), Q::int(4));
/// b.edge(v, v, Q::int(5));
/// let task = b.build().unwrap();
///
/// let dbf = Dbf::compute(&task, Q::int(20)).unwrap();
/// assert_eq!(dbf.eval(Q::int(3)), Q::ZERO);  // deadline not yet inside
/// assert_eq!(dbf.eval(Q::int(4)), Q::int(2));
/// assert_eq!(dbf.eval(Q::int(9)), Q::int(4)); // two jobs fit (0+4, 5+4)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dbf {
    /// Breakpoints `(deadline, demand)` with strictly increasing both.
    points: Vec<(Q, Q)>,
    horizon: Q,
    /// Retained (non-dominated) demand triples.
    pub triples_retained: usize,
    /// Candidates pruned by dominance.
    pub triples_pruned: usize,
}

/// Error: the task has a vertex without a deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingDeadline {
    /// The offending vertex.
    pub vertex: VertexId,
}

impl std::fmt::Display for MissingDeadline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vertex {} has no deadline (required for dbf)", self.vertex)
    }
}

impl std::error::Error for MissingDeadline {}

impl Dbf {
    /// Computes the demand-bound function of `task` on `[0, horizon]`.
    ///
    /// # Errors
    ///
    /// [`MissingDeadline`] if any vertex lacks a deadline.
    pub fn compute(task: &DrtTask, horizon: Q) -> Result<Dbf, MissingDeadline> {
        for v in task.vertex_ids() {
            if task.deadline(v).is_none() {
                return Err(MissingDeadline { vertex: v });
            }
        }
        let dl = |v: VertexId| task.deadline(v).expect("checked above");

        // Per-vertex 3D Pareto frontiers.
        let mut frontiers: Vec<Vec<(Q, Q, Q)>> = vec![Vec::new(); task.num_vertices()];
        let dominated = |f: &[(Q, Q, Q)], s: Q, d: Q, w: Q| {
            f.iter().any(|&(fs, fd, fw)| fs <= s && fd <= d && fw >= w)
        };
        let insert = |f: &mut Vec<(Q, Q, Q)>, s: Q, d: Q, w: Q| {
            f.retain(|&(fs, fd, fw)| !(s <= fs && d <= fd && w >= fw));
            f.push((s, d, w));
        };

        let mut heap: BinaryHeap<Triple> = BinaryHeap::new();
        for v in task.vertex_ids() {
            heap.push(Triple {
                span: Q::ZERO,
                latest_deadline: dl(v),
                work: task.wcet(v),
                vertex: v,
            });
        }

        let mut kept: Vec<(Q, Q)> = Vec::new(); // (latest_deadline, work)
        let mut retained = 0usize;
        let mut pruned = 0usize;
        while let Some(t) = heap.pop() {
            let f = &mut frontiers[t.vertex.index()];
            if dominated(f, t.span, t.latest_deadline, t.work) {
                pruned += 1;
                continue;
            }
            insert(f, t.span, t.latest_deadline, t.work);
            retained += 1;
            if t.latest_deadline <= horizon {
                kept.push((t.latest_deadline, t.work));
            }
            for e in task.out_edges(t.vertex) {
                let span = t.span + e.separation;
                if span > horizon {
                    continue; // deadline beyond span is also beyond horizon
                }
                let w = e.to;
                heap.push(Triple {
                    span,
                    latest_deadline: t.latest_deadline.max(span + dl(w)),
                    work: t.work + task.wcet(w),
                    vertex: w,
                });
            }
        }

        kept.sort();
        let mut points: Vec<(Q, Q)> = Vec::new();
        for (d, w) in kept {
            match points.last_mut() {
                Some(last) if last.0 == d => {
                    if w > last.1 {
                        last.1 = w;
                    }
                }
                Some(last) if w <= last.1 => {}
                _ => points.push((d, w)),
            }
        }
        Ok(Dbf {
            points,
            horizon,
            triples_retained: retained,
            triples_pruned: pruned,
        })
    }

    /// Evaluates `dbf(t)`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative or beyond the computed horizon.
    pub fn eval(&self, t: Q) -> Q {
        assert!(!t.is_negative(), "dbf at negative window length");
        assert!(
            t <= self.horizon,
            "dbf({t}) beyond computed horizon {}",
            self.horizon
        );
        match self.points.iter().rev().find(|p| p.0 <= t) {
            Some(&(_, w)) => w,
            None => Q::ZERO,
        }
    }

    /// The breakpoints `(deadline, demand)`.
    pub fn points(&self) -> &[(Q, Q)] {
        &self.points
    }

    /// The horizon up to which this dbf is valid.
    pub fn horizon(&self) -> Q {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DrtTaskBuilder;
    use crate::rbf::Rbf;
    use srtw_minplus::q;

    fn deadline_task() -> DrtTask {
        let mut b = DrtTaskBuilder::new("dl");
        let a = b.vertex_with_deadline("a", Q::int(3), Q::int(6));
        let x = b.vertex_with_deadline("x", Q::ONE, Q::int(2));
        let y = b.vertex_with_deadline("y", Q::int(2), Q::int(8));
        b.edge(a, x, Q::int(4));
        b.edge(a, y, Q::int(6));
        b.edge(x, a, Q::int(4));
        b.edge(y, a, Q::int(3));
        b.build().unwrap()
    }

    /// Exhaustive dbf by DFS (no pruning).
    fn brute_dbf(task: &DrtTask, t: Q) -> Q {
        fn dfs(
            task: &DrtTask,
            v: VertexId,
            span: Q,
            latest: Q,
            work: Q,
            t: Q,
            best: &mut Q,
        ) {
            if latest <= t && work > *best {
                *best = work;
            }
            for e in task.out_edges(v) {
                let s = span + e.separation;
                if s > t {
                    continue;
                }
                let w = e.to;
                let d = task.deadline(w).unwrap();
                dfs(task, w, s, latest.max(s + d), work + task.wcet(w), t, best);
            }
        }
        let mut best = Q::ZERO;
        for v in task.vertex_ids() {
            dfs(
                task,
                v,
                Q::ZERO,
                task.deadline(v).unwrap(),
                task.wcet(v),
                t,
                &mut best,
            );
        }
        best
    }

    #[test]
    fn dbf_matches_brute_force() {
        let task = deadline_task();
        let dbf = Dbf::compute(&task, Q::int(40)).unwrap();
        for i in 0..=80 {
            let t = q(i, 2);
            assert_eq!(dbf.eval(t), brute_dbf(&task, t), "dbf({t})");
        }
    }

    #[test]
    fn dbf_below_rbf() {
        // Demand (deadline-constrained) never exceeds requests.
        let task = deadline_task();
        let dbf = Dbf::compute(&task, Q::int(40)).unwrap();
        let rbf = Rbf::compute(&task, Q::int(40));
        for i in 0..=40 {
            let t = Q::int(i);
            assert!(dbf.eval(t) <= rbf.eval(t), "dbf > rbf at {t}");
        }
    }

    #[test]
    fn dbf_monotone() {
        let task = deadline_task();
        let dbf = Dbf::compute(&task, Q::int(60)).unwrap();
        let mut prev = Q::ZERO;
        for i in 0..=60 {
            let v = dbf.eval(Q::int(i));
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn missing_deadline_rejected() {
        let mut b = DrtTaskBuilder::new("no-dl");
        let v = b.vertex("v", Q::ONE);
        b.edge(v, v, Q::int(5));
        let task = b.build().unwrap();
        assert!(Dbf::compute(&task, Q::int(10)).is_err());
    }

    #[test]
    fn periodic_dbf_closed_form() {
        // (e=2, p=5, d=4): dbf(t) = 2·(⌊(t−4)/5⌋+1) for t ≥ 4.
        let mut b = DrtTaskBuilder::new("p");
        let v = b.vertex_with_deadline("j", Q::int(2), Q::int(4));
        b.edge(v, v, Q::int(5));
        let task = b.build().unwrap();
        let dbf = Dbf::compute(&task, Q::int(50)).unwrap();
        assert_eq!(dbf.eval(Q::int(3)), Q::ZERO);
        assert_eq!(dbf.eval(Q::int(4)), Q::int(2));
        assert_eq!(dbf.eval(Q::int(8)), Q::int(2));
        assert_eq!(dbf.eval(Q::int(9)), Q::int(4));
        assert_eq!(dbf.eval(Q::int(44)), Q::int(18));
    }

    #[test]
    fn pruning_counters_populated() {
        let task = deadline_task();
        let dbf = Dbf::compute(&task, Q::int(60)).unwrap();
        assert!(dbf.triples_retained > 0);
        assert!(dbf.points().len() <= dbf.triples_retained);
    }
}
