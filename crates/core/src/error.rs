//! Error types of the delay analyses.

use srtw_minplus::{ArithmeticError, BudgetKind, CurveError, Q};
use std::fmt;

/// Errors produced by the delay and backlog analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The workload's long-run utilization reaches or exceeds the
    /// guaranteed service rate: no finite busy window (and hence no finite
    /// delay bound) exists.
    Unstable {
        /// Total long-run demand rate.
        utilization: Q,
        /// Guaranteed long-run service rate.
        service_rate: Q,
    },
    /// The busy-window fixpoint iteration did not converge within the
    /// iteration cap (pathological parameters).
    BusyWindowDiverged {
        /// The horizon reached when giving up.
        reached: Q,
    },
    /// The service curve saturates below the demand (no rate at all).
    ServiceSaturated,
    /// A deadline-based analysis (EDF) needs a deadline on every vertex.
    MissingDeadline {
        /// The task whose vertex lacks a deadline.
        task: String,
        /// Index of the offending vertex.
        vertex: usize,
    },
    /// The requested analysis does not support the given service curves
    /// (e.g. exact tandem convolution of periodic-tailed curves).
    UnsupportedService {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Exact `i128` rational arithmetic overflowed inside a curve
    /// operation (the inputs are simply too large for the representation).
    Arithmetic(ArithmeticError),
    /// An analysis budget was exhausted **and** no sound degraded bound
    /// exists: the coarse affine demand abstraction's rate reaches the
    /// guaranteed service rate, so even the fallback busy window is
    /// unbounded. (Whenever a sound degraded bound does exist the analyses
    /// return it with a [`crate::BoundQuality::Degraded`] marker instead
    /// of this error.)
    BudgetExhausted {
        /// The budget dimension that tripped.
        tripped: BudgetKind,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Unstable {
                utilization,
                service_rate,
            } => write!(
                f,
                "unstable: utilization {utilization} ≥ service rate {service_rate}"
            ),
            AnalysisError::BusyWindowDiverged { reached } => {
                write!(f, "busy-window iteration diverged (reached {reached})")
            }
            AnalysisError::ServiceSaturated => {
                write!(f, "service curve saturates below the demand")
            }
            AnalysisError::MissingDeadline { task, vertex } => {
                write!(f, "task '{task}': vertex {vertex} has no deadline")
            }
            AnalysisError::UnsupportedService { reason } => {
                write!(f, "unsupported service curves: {reason}")
            }
            AnalysisError::Arithmetic(e) => write!(f, "{e}"),
            AnalysisError::BudgetExhausted { tripped } => write!(
                f,
                "budget exhausted ({tripped}) with no sound degraded bound: \
                 the coarse demand abstraction saturates the service rate"
            ),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<CurveError> for AnalysisError {
    fn from(e: CurveError) -> Self {
        match e {
            CurveError::Arithmetic(a) => AnalysisError::Arithmetic(a),
            CurveError::Budget(k) => AnalysisError::BudgetExhausted { tripped: k },
            _ => AnalysisError::UnsupportedService {
                reason: "curve operation rejected its operands",
            },
        }
    }
}
