//! Property-based tests for the workload models and their bound functions.
//!
//! Runs on the in-house seeded harness ([`srtw_detrand::prop`]); set
//! `SRTW_PROP_CASES` / `SRTW_PROP_SEED` / `SRTW_PROP_REPLAY` to control it.

use srtw_detrand::prop::forall;
use srtw_detrand::Rng;
use srtw_minplus::Q;
use srtw_workload::{
    explore, long_run_utilization, Dbf, DrtTask, DrtTaskBuilder, ExploreConfig, Rbf,
};

/// Generator: a random small strongly-connected-ish digraph task built from
/// a ring plus chords, with optional deadlines.
fn task(rng: &mut Rng, with_deadlines: bool) -> DrtTask {
    let n = rng.random_range(2usize..6);
    let chords: Vec<(usize, usize, i128)> = (0..rng.random_range(0usize..6))
        .map(|_| {
            (
                rng.random_range(0usize..6),
                rng.random_range(0usize..6),
                rng.random_range(2i128..12),
            )
        })
        .collect();
    let params: Vec<(i128, i128)> = (0..6)
        .map(|_| (rng.random_range(1i128..6), rng.random_range(3i128..15)))
        .collect();

    let mut b = DrtTaskBuilder::new("prop");
    let ids: Vec<_> = (0..n)
        .map(|i| {
            let (w, d) = params[i];
            if with_deadlines {
                b.vertex_with_deadline(format!("v{i}"), Q::int(w), Q::int(d + w))
            } else {
                b.vertex(format!("v{i}"), Q::int(w))
            }
        })
        .collect();
    let mut present = std::collections::HashSet::new();
    for i in 0..n {
        let j = (i + 1) % n;
        let (_, sep) = params[i];
        b.edge(ids[i], ids[j], Q::int(sep));
        present.insert((i, j));
    }
    for (i, j, sep) in chords {
        let (i, j) = (i % n, j % n);
        if present.insert((i, j)) {
            b.edge(ids[i], ids[j], Q::int(sep));
        }
    }
    b.build().expect("generated task valid")
}

#[test]
fn rbf_is_subadditive() {
    forall(
        "rbf_is_subadditive",
        |rng, _| task(rng, false),
        |task| {
            // rbf(a + b) ≤ rbf(a) + rbf(b): a window splits into two halves
            // whose sub-paths are themselves legal paths.
            let h = Q::int(60);
            let rbf = Rbf::compute(task, h);
            for a in 0..30i128 {
                for b in 0..30i128 {
                    let (qa, qb) = (Q::int(a), Q::int(b));
                    assert!(
                        rbf.eval(qa + qb) <= rbf.eval(qa) + rbf.eval(qb),
                        "rbf not subadditive at {a} + {b}"
                    );
                }
            }
        },
    );
}

#[test]
fn dbf_below_rbf_everywhere() {
    forall(
        "dbf_below_rbf_everywhere",
        |rng, _| task(rng, true),
        |task| {
            let h = Q::int(50);
            let rbf = Rbf::compute(task, h);
            let dbf = Dbf::compute(task, h).unwrap();
            for t in 0..=50i128 {
                let t = Q::int(t);
                assert!(dbf.eval(t) <= rbf.eval(t), "dbf > rbf at {t}");
            }
        },
    );
}

#[test]
fn rbf_growth_matches_utilization() {
    forall(
        "rbf_growth_matches_utilization",
        |rng, _| task(rng, false),
        |task| {
            // Long-run rbf slope approaches U: |rbf(T) − U·T| bounded by a
            // constant independent of T (total WCET is a safe constant here).
            let u = long_run_utilization(task);
            let total_wcet: Q = task
                .vertex_ids()
                .map(|v| task.wcet(v))
                .fold(Q::ZERO, |a, b| a + b);
            let slack = total_wcet * Q::int(2) + Q::int(2);
            for &t in &[100i128, 200, 400] {
                let t = Q::int(t);
                let rbf = Rbf::compute(task, t);
                let v = rbf.eval(t);
                assert!(v <= u * t + slack, "rbf too high at {t}");
                // The critical cycle can be driven forever, so rbf also grows
                // at least at rate U (minus one cycle of slack).
                assert!(v + slack >= u * t, "rbf too low at {t}");
            }
        },
    );
}

#[test]
fn exploration_spans_are_sorted_and_within_horizon() {
    forall(
        "exploration_spans_are_sorted_and_within_horizon",
        |rng, _| task(rng, false),
        |task| {
            let h = Q::int(40);
            let ex = explore(task, &ExploreConfig::new(h));
            let mut prev = Q::ZERO;
            for n in ex.nodes() {
                assert!(n.span >= prev, "nodes not in span order");
                assert!(n.span <= h, "span beyond horizon");
                assert!(n.work.is_positive());
                prev = n.span;
            }
        },
    );
}

#[test]
fn witness_paths_are_graph_walks() {
    forall(
        "witness_paths_are_graph_walks",
        |rng, _| task(rng, false),
        |task| {
            let ex = explore(task, &ExploreConfig::new(Q::int(30)));
            for i in 0..ex.nodes().len().min(50) {
                let path = ex.path_of(i);
                assert_eq!(*path.last().unwrap(), ex.nodes()[i].vertex);
                for w in path.windows(2) {
                    assert!(
                        task.out_edges(w[0]).iter().any(|e| e.to == w[1]),
                        "witness path uses a non-edge"
                    );
                }
                assert_eq!(path.len(), ex.nodes()[i].len);
            }
        },
    );
}

#[test]
fn utilization_below_one_iff_bounded_by_cycle_check() {
    forall(
        "utilization_below_one_iff_bounded_by_cycle_check",
        |rng, _| task(rng, false),
        |task| {
            // The exact utilization equals the max over a brute-force cycle
            // enumeration on these small graphs (DFS up to n edges deep).
            let u = long_run_utilization(task);
            let n = task.num_vertices();
            let mut best = Q::ZERO;
            // Enumerate simple cycles by DFS from each vertex.
            fn dfs(
                task: &DrtTask,
                start: srtw_workload::VertexId,
                v: srtw_workload::VertexId,
                visited: &mut Vec<bool>,
                work: Q,
                span: Q,
                best: &mut Q,
            ) {
                for e in task.out_edges(v) {
                    let w = task.wcet(e.to);
                    if e.to == start {
                        let ratio = (work + w) / (span + e.separation);
                        if ratio > *best {
                            *best = ratio;
                        }
                    } else if !visited[e.to.index()] {
                        visited[e.to.index()] = true;
                        dfs(task, start, e.to, visited, work + w, span + e.separation, best);
                        visited[e.to.index()] = false;
                    }
                }
            }
            for s in task.vertex_ids() {
                let mut visited = vec![false; n];
                visited[s.index()] = true;
                dfs(task, s, s, &mut visited, Q::ZERO, Q::ZERO, &mut best);
            }
            assert_eq!(u, best, "utilization mismatch vs brute-force cycles");
        },
    );
}
