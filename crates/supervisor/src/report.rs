//! Batch-level aggregation and rendering of job outcomes.

use crate::job::{JobOutcome, JobStatus};
use srtw_core::Json;
use std::fmt;
use std::time::Duration;

/// Outcome counts of one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchCounts {
    /// Jobs that completed with exact bounds.
    pub exact: usize,
    /// Jobs that completed with sound but degraded bounds.
    pub degraded: usize,
    /// Jobs that failed every rung of the ladder.
    pub failed: usize,
    /// Jobs never attempted (`--fail-fast`).
    pub skipped: usize,
}

/// Overall classification of a batch, in increasing severity. Maps to the
/// CLI exit-code contract: all-exact → 0, some-degraded → 0 plus a stderr
/// warning, some-failed → 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStatus {
    /// Every job completed with exact bounds.
    AllExact,
    /// Every job completed, but some only with degraded (still sound)
    /// bounds.
    SomeDegraded,
    /// Some jobs failed every rung (or were skipped by `--fail-fast`).
    SomeFailed,
}

impl BatchStatus {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            BatchStatus::AllExact => "all_exact",
            BatchStatus::SomeDegraded => "some_degraded",
            BatchStatus::SomeFailed => "some_failed",
        }
    }
}

/// Everything a batch run produced, in input order.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One outcome per input job, in input order.
    pub jobs: Vec<JobOutcome>,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
}

impl BatchReport {
    /// Tallies the job outcomes.
    pub fn counts(&self) -> BatchCounts {
        let mut c = BatchCounts::default();
        for job in &self.jobs {
            match job.status {
                JobStatus::Exact => c.exact += 1,
                JobStatus::Degraded => c.degraded += 1,
                JobStatus::Failed => c.failed += 1,
                JobStatus::Skipped => c.skipped += 1,
            }
        }
        c
    }

    /// Overall classification (drives the CLI exit code).
    pub fn status(&self) -> BatchStatus {
        let c = self.counts();
        if c.failed > 0 || c.skipped > 0 {
            BatchStatus::SomeFailed
        } else if c.degraded > 0 {
            BatchStatus::SomeDegraded
        } else {
            BatchStatus::AllExact
        }
    }

    /// The report as a JSON value.
    pub fn to_json(&self) -> Json {
        let c = self.counts();
        Json::object(vec![
            (
                "jobs",
                Json::Array(self.jobs.iter().map(JobOutcome::to_json).collect()),
            ),
            (
                "summary",
                Json::object(vec![
                    ("status", Json::str(self.status().as_str())),
                    ("total", Json::Int(self.jobs.len() as i128)),
                    ("exact", Json::Int(c.exact as i128)),
                    ("degraded", Json::Int(c.degraded as i128)),
                    ("failed", Json::Int(c.failed as i128)),
                    ("skipped", Json::Int(c.skipped as i128)),
                    ("wall_ms", Json::Float(self.wall.as_secs_f64() * 1e3)),
                ]),
            ),
        ])
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for job in &self.jobs {
            let rung = match job.rung {
                Some(r) => format!(" [{r}]"),
                None => String::new(),
            };
            let detail = match &job.error {
                Some(e) => format!(": {e}"),
                None => String::new(),
            };
            writeln!(
                f,
                "{:<9} {}{} ({} attempt{}, {:.1} ms){}",
                job.status.as_str(),
                job.name,
                rung,
                job.attempts.len(),
                if job.attempts.len() == 1 { "" } else { "s" },
                job.wall.as_secs_f64() * 1e3,
                detail
            )?;
        }
        let c = self.counts();
        write!(
            f,
            "batch: {} job(s) — {} exact, {} degraded, {} failed, {} skipped in {:.1} ms",
            self.jobs.len(),
            c.exact,
            c.degraded,
            c.failed,
            c.skipped,
            self.wall.as_secs_f64() * 1e3
        )
    }
}
