//! Analysis result types and their pretty-printers (text and JSON).

use crate::json::Json;
use srtw_minplus::{BudgetKind, Q};
use srtw_workload::{DrtTask, VertexId};
use std::fmt;
use std::time::Duration;

/// The coarsest abstraction a budget-degraded bound had to fall back to.
///
/// Ordered from mildest to coarsest: each variant's bound is still sound
/// (it upper-bounds the true worst case), only potentially more
/// pessimistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fallback {
    /// The exact path exploration was cut short; demand beyond the cut is
    /// covered by the (still exact) arrival-curve abstraction — the same
    /// mechanism as a deliberate `horizon_fraction < 1`.
    TruncatedHorizon,
    /// The structural exploration completed nothing, but every
    /// request-bound function is exact: the bound is precisely the RTC
    /// (arrival-curve) baseline.
    RtcBaseline,
    /// At least one request-bound function is itself truncated, so parts
    /// of the bound rest on its coarse affine over-approximation — the
    /// weakest (but always available, and always sound) abstraction.
    CoarseRbf,
}

impl Fallback {
    /// Stable machine-readable name (used in JSON output).
    pub fn as_str(&self) -> &'static str {
        match self {
            Fallback::TruncatedHorizon => "truncated_horizon",
            Fallback::RtcBaseline => "rtc_baseline",
            Fallback::CoarseRbf => "coarse_rbf",
        }
    }
}

impl fmt::Display for Fallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Fallback::TruncatedHorizon => "truncated exploration horizon",
            Fallback::RtcBaseline => "RTC arrival-curve baseline",
            Fallback::CoarseRbf => "coarse affine rbf tail",
        })
    }
}

/// Whether a reported bound is exact or budget-degraded.
///
/// Degraded bounds are **sound** — they never under-estimate the true
/// worst case — they may merely be pessimistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundQuality {
    /// The analysis ran to completion within its budget.
    Exact,
    /// A budget tripped; the analysis degraded gracefully.
    Degraded {
        /// The coarsest abstraction the bound had to fall back to.
        fallback: Fallback,
    },
}

impl BoundQuality {
    /// `true` for [`BoundQuality::Exact`].
    pub fn is_exact(&self) -> bool {
        matches!(self, BoundQuality::Exact)
    }

    /// The quality as a JSON value.
    pub fn to_json(&self) -> Json {
        match self {
            BoundQuality::Exact => Json::object(vec![("exact", Json::Bool(true))]),
            BoundQuality::Degraded { fallback } => Json::object(vec![
                ("exact", Json::Bool(false)),
                ("fallback", Json::str(fallback.as_str())),
            ]),
        }
    }
}

/// One budget-degradation event recorded during an analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The analysis component that was cut short (`busy_window`,
    /// `exploration('task')`, `rbf('task')`, `interference_rbf('task')`).
    pub component: String,
    /// The budget dimension that tripped.
    pub tripped: BudgetKind,
    /// What exactly was truncated, human-readable.
    pub detail: String,
}

impl Degradation {
    /// The degradation event as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("component", Json::str(&self.component)),
            ("tripped", Json::str(self.tripped.as_str())),
            ("detail", Json::str(&self.detail)),
        ])
    }
}

/// The witness abstract path realizing a delay bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessPath {
    /// Vertex sequence of the path (last vertex is the analysed job type).
    pub vertices: Vec<VertexId>,
    /// Minimum span between first and last release.
    pub span: Q,
    /// Total WCET along the path.
    pub work: Q,
}

impl WitnessPath {
    /// Renders the witness with vertex labels from the task.
    pub fn render(&self, task: &DrtTask) -> String {
        let labels: Vec<&str> = self
            .vertices
            .iter()
            .map(|&v| task.vertex(v).label.as_str())
            .collect();
        format!(
            "{} (span {}, work {})",
            labels.join(" → "),
            self.span,
            self.work
        )
    }

    /// The witness as a JSON value (vertex indices, span, work).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            (
                "vertices",
                Json::Array(
                    self.vertices
                        .iter()
                        .map(|v| Json::Int(v.index() as i128))
                        .collect(),
                ),
            ),
            ("span", Json::rational(self.span)),
            ("work", Json::rational(self.work)),
        ])
    }
}

/// Delay bound of one job type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexBound {
    /// The job type.
    pub vertex: VertexId,
    /// Its label (copied from the task for self-contained reports).
    pub label: String,
    /// Worst-case response-time bound for jobs of this type.
    pub bound: Q,
    /// The abstract path realizing the bound (absent when the bound comes
    /// from the truncation fallback).
    pub witness: Option<WitnessPath>,
    /// Did the abstraction-depth fallback determine this bound?
    pub from_fallback: bool,
}

impl VertexBound {
    /// The bound as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("vertex", Json::Int(self.vertex.index() as i128)),
            ("label", Json::str(&self.label)),
            ("bound", Json::rational(self.bound)),
            (
                "witness",
                match &self.witness {
                    Some(w) => w.to_json(),
                    None => Json::Null,
                },
            ),
            ("from_fallback", Json::Bool(self.from_fallback)),
        ])
    }
}

/// Result of a structural delay analysis of one stream.
#[derive(Debug, Clone)]
pub struct DelayAnalysis {
    /// Name of the analysed task.
    pub task_name: String,
    /// Per-job-type delay bounds — the structural analysis' distinguishing
    /// output (an arrival-curve analysis cannot attribute delays to types).
    pub per_vertex: Vec<VertexBound>,
    /// The stream-wide bound `max over job types` (provably equal to the
    /// RTC bound at full depth).
    pub stream_bound: Q,
    /// The busy-window bound the analysis ran to.
    pub busy_window: Q,
    /// Long-run utilization of the analysed workload (all streams).
    pub utilization: Q,
    /// Abstract paths retained after pruning.
    pub paths_retained: usize,
    /// Abstract path candidates generated.
    pub paths_generated: usize,
    /// Candidates discarded by dominance pruning.
    pub paths_pruned: usize,
    /// Wall-clock analysis time.
    pub runtime: Duration,
    /// Exact, or degraded because an analysis budget tripped.
    pub quality: BoundQuality,
    /// Every budget-degradation event hit while computing this result
    /// (empty iff `quality` is [`BoundQuality::Exact`]).
    pub degradations: Vec<Degradation>,
}

impl DelayAnalysis {
    /// The bound for a specific job type.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the analysed task.
    pub fn bound_of(&self, v: VertexId) -> Q {
        self.per_vertex
            .iter()
            .find(|b| b.vertex == v)
            .map(|b| b.bound)
            .expect("unknown vertex in bound_of")
    }

    /// Are all per-type bounds within their deadlines? Vertices without a
    /// deadline are unconstrained.
    pub fn schedulable(&self, task: &DrtTask) -> bool {
        self.per_vertex.iter().all(|b| match task.deadline(b.vertex) {
            Some(d) => b.bound <= d,
            None => true,
        })
    }

    /// The full analysis as a JSON value (used by `srtw analyze --json`).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("task", Json::str(&self.task_name)),
            (
                "per_vertex",
                Json::Array(self.per_vertex.iter().map(VertexBound::to_json).collect()),
            ),
            ("stream_bound", Json::rational(self.stream_bound)),
            ("busy_window", Json::rational(self.busy_window)),
            ("utilization", Json::rational(self.utilization)),
            ("paths_retained", Json::Int(self.paths_retained as i128)),
            ("paths_generated", Json::Int(self.paths_generated as i128)),
            ("paths_pruned", Json::Int(self.paths_pruned as i128)),
            ("runtime_secs", Json::Float(self.runtime.as_secs_f64())),
            ("quality", self.quality.to_json()),
            (
                "degradations",
                Json::Array(self.degradations.iter().map(Degradation::to_json).collect()),
            ),
        ])
    }
}

impl fmt::Display for DelayAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "structural delay analysis of '{}' (U = {}, busy window ≤ {}, {} paths, {} pruned, {:?})",
            self.task_name,
            self.utilization,
            self.busy_window,
            self.paths_retained,
            self.paths_pruned,
            self.runtime,
        )?;
        for b in &self.per_vertex {
            writeln!(
                f,
                "  {:<12} delay ≤ {}{}",
                b.label,
                b.bound,
                if b.from_fallback { " (fallback)" } else { "" }
            )?;
        }
        if let BoundQuality::Degraded { fallback } = self.quality {
            writeln!(
                f,
                "  DEGRADED (sound, possibly pessimistic): fell back to {fallback}"
            )?;
            for d in &self.degradations {
                writeln!(f, "    - {}: {} budget: {}", d.component, d.tripped, d.detail)?;
            }
        }
        write!(f, "  stream bound: {}", self.stream_bound)
    }
}

/// Result of the RTC (arrival-curve) baseline analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtcReport {
    /// The single stream-wide delay bound the abstraction permits.
    pub bound: Q,
    /// The busy-window bound used.
    pub busy_window: Q,
    /// Number of rbf breakpoints inspected.
    pub breakpoints: usize,
    /// Exact, or degraded because an analysis budget tripped.
    pub quality: BoundQuality,
}

impl RtcReport {
    /// The report as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("bound", Json::rational(self.bound)),
            ("busy_window", Json::rational(self.busy_window)),
            ("breakpoints", Json::Int(self.breakpoints as i128)),
            ("quality", self.quality.to_json()),
        ])
    }
}

impl fmt::Display for RtcReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RTC delay ≤ {} (busy window ≤ {}, {} breakpoints{})",
            self.bound,
            self.busy_window,
            self.breakpoints,
            if self.quality.is_exact() {
                ""
            } else {
                ", DEGRADED"
            }
        )
    }
}
