//! A fixed worker pool with supervisor-style respawn.
//!
//! Workers pull jobs off the [`Gate`](crate::gate::Gate) and run them
//! behind `catch_unwind`. A panic in the *handler* (a bug in the server
//! code itself — analysis panics are already contained one level deeper
//! by [`srtw_supervisor::contain`]) kills only that worker; a monitor
//! thread respawns a replacement so capacity self-heals, exactly like the
//! batch supervisor respawning after a crashed attempt. Respawn stops
//! once [`Pool::stop`] begins, so drain terminates.

use crate::gate::Gate;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// The handler a worker runs per job. Must not assume panics are fatal.
pub type Handler<J> = Arc<dyn Fn(J) + Send + Sync + 'static>;

enum Event {
    /// A worker's handler panicked and the worker exited.
    Died,
    /// Stop respawning (drain begins).
    Stop,
}

/// What happened over the pool's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolReport {
    /// Workers respawned after a handler panic.
    pub respawned: u64,
    /// Workers still running when the stop patience expired; they were
    /// detached (they exit when their current job finishes — or never,
    /// if it is truly stuck).
    pub abandoned: usize,
}

/// A fixed-size worker pool over a shared gate.
pub struct Pool {
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    monitor: Option<JoinHandle<()>>,
    events: mpsc::Sender<Event>,
    respawned: Arc<AtomicU64>,
    size: usize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("size", &self.size)
            .field("respawned", &self.respawned.load(Ordering::Relaxed))
            .finish()
    }
}

fn spawn_worker<J: Send + 'static>(
    index: usize,
    generation: u64,
    gate: &Arc<Gate<J>>,
    handler: &Handler<J>,
    events: &mpsc::Sender<Event>,
) -> std::io::Result<JoinHandle<()>> {
    let gate = Arc::clone(gate);
    let handler = Arc::clone(handler);
    let events = events.clone();
    thread::Builder::new()
        .name(format!("srtw-serve-worker-{index}.{generation}"))
        .spawn(move || {
            while let Some(job) = gate.take() {
                if catch_unwind(AssertUnwindSafe(|| handler(job))).is_err() {
                    // This worker's state is suspect; die and let the
                    // monitor replace us with a fresh one.
                    let _ = events.send(Event::Died);
                    return;
                }
            }
        })
}

impl Pool {
    /// Spawns `size` workers (clamped to at least 1) pulling from `gate`.
    pub fn spawn<J: Send + 'static>(size: usize, gate: Arc<Gate<J>>, handler: Handler<J>) -> Pool {
        let size = size.max(1);
        let (tx, rx) = mpsc::channel();
        let handles = Arc::new(Mutex::new(Vec::with_capacity(size)));
        let respawned = Arc::new(AtomicU64::new(0));
        {
            let mut hs = handles.lock().unwrap();
            for i in 0..size {
                if let Ok(h) = spawn_worker(i, 0, &gate, &handler, &tx) {
                    hs.push(h);
                }
            }
        }
        let monitor = {
            let handles = Arc::clone(&handles);
            let respawned = Arc::clone(&respawned);
            let events = tx.clone();
            thread::Builder::new()
                .name("srtw-serve-monitor".into())
                .spawn(move || {
                    let mut generation = 0u64;
                    while let Ok(event) = rx.recv() {
                        match event {
                            Event::Stop => return,
                            Event::Died => {
                                generation += 1;
                                let n = respawned.fetch_add(1, Ordering::Relaxed);
                                if let Ok(h) =
                                    spawn_worker(n as usize, generation, &gate, &handler, &events)
                                {
                                    handles.lock().unwrap().push(h);
                                }
                            }
                        }
                    }
                })
                .ok()
        };
        Pool {
            handles,
            monitor,
            events: tx,
            respawned,
            size,
        }
    }

    /// The configured worker count.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Workers respawned so far.
    pub fn respawned(&self) -> u64 {
        self.respawned.load(Ordering::Relaxed)
    }

    /// Number of workers that have not yet exited.
    pub fn alive(&self) -> usize {
        self.handles
            .lock()
            .unwrap()
            .iter()
            .filter(|h| !h.is_finished())
            .count()
    }

    /// Polls until every worker has exited or `patience` runs out.
    /// Returns `true` when the pool is fully idle (drained).
    pub fn wait_idle(&self, patience: Duration) -> bool {
        let deadline = Instant::now() + patience;
        loop {
            if self.alive() == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stops respawning, waits up to `patience` for workers to exit, and
    /// reports. The gate must already be closed or the workers will never
    /// exit on their own. Stragglers are detached, not killed — safe Rust
    /// cannot kill a thread.
    pub fn stop(mut self, patience: Duration) -> PoolReport {
        let _ = self.events.send(Event::Stop);
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
        self.wait_idle(patience);
        let handles = std::mem::take(&mut *self.handles.lock().unwrap());
        let mut abandoned = 0;
        for h in handles {
            if h.is_finished() {
                let _ = h.join();
            } else {
                abandoned += 1;
                drop(h); // detach
            }
        }
        PoolReport {
            respawned: self.respawned.load(Ordering::Relaxed),
            abandoned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_processes_every_admitted_job() {
        let gate = Arc::new(Gate::new(64));
        let done = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&done);
        let pool = Pool::spawn(
            3,
            Arc::clone(&gate),
            Arc::new(move |_job: u32| {
                counter.fetch_add(1, Ordering::Relaxed);
            }),
        );
        for i in 0..50 {
            gate.offer(i).unwrap();
        }
        gate.close();
        let report = pool.stop(Duration::from_secs(10));
        assert_eq!(done.load(Ordering::Relaxed), 50);
        assert_eq!(report, PoolReport { respawned: 0, abandoned: 0 });
    }

    #[test]
    fn panicking_handler_kills_the_worker_but_a_respawn_restores_capacity() {
        let gate = Arc::new(Gate::new(64));
        let done = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&done);
        let pool = Pool::spawn(
            1,
            Arc::clone(&gate),
            Arc::new(move |job: u32| {
                if job == 7 {
                    panic!("poison job");
                }
                counter.fetch_add(1, Ordering::Relaxed);
            }),
        );
        for i in 0..20 {
            gate.offer(i).unwrap();
            // Single worker: pace the offers so the queue (cap 64) never
            // sheds while the poison job is being replaced.
            while gate.depth() > 0 && pool.alive() > 0 {
                std::thread::yield_now();
            }
        }
        gate.close();
        let report = pool.stop(Duration::from_secs(10));
        assert_eq!(
            done.load(Ordering::Relaxed),
            19,
            "every job except the poison one completed"
        );
        assert!(report.respawned >= 1, "the dead worker was replaced");
        assert_eq!(report.abandoned, 0);
    }

    #[test]
    fn stop_detaches_a_stuck_worker_as_abandoned() {
        let gate = Arc::new(Gate::new(4));
        let pool = Pool::spawn(
            1,
            Arc::clone(&gate),
            Arc::new(|_job: u32| {
                thread::sleep(Duration::from_secs(600));
            }),
        );
        gate.offer(1).unwrap();
        // Wait until the worker has picked the job up.
        while gate.depth() > 0 {
            thread::yield_now();
        }
        gate.close();
        let report = pool.stop(Duration::from_millis(50));
        assert_eq!(report.abandoned, 1);
    }
}
