//! (min,+) convolution and deconvolution.
//!
//! The convolution `f ⊗ g (t) = inf_{0≤s≤t} f(s) + g(t−s)` and deconvolution
//! `f ⊘ g (t) = sup_{u≥0} f(t+u) − g(u)` are the workhorses of network /
//! real-time calculus: `⊗` composes service curves, `⊘` propagates arrival
//! curves through servers.
//!
//! Following the *finitary* approach (exact computation on a bounded prefix,
//! which is all a delay analysis inside a busy window ever inspects), this
//! module provides:
//!
//! * [`Curve::conv_upto`] — exact on `[0, h]` for **any** operands,
//! * [`Curve::conv`] — exact everywhere for ultimately-affine operands,
//! * [`Curve::deconv_upto`] — exact on `[0, h]` given a sufficient
//!   optimisation horizon for the hidden supremum,
//! * [`Curve::deconv`] — deconvolution with an automatically derived
//!   sufficient horizon for stable operand pairs.

use crate::curve::{try_common_check_horizon, Curve, Piece, Shape, Tail};
use crate::error::CurveError;
use crate::meter::{BudgetKind, BudgetMeter};
use crate::ops::{ck_add, TailInfo};
use crate::ratio::Q;

/// The budget error carrying whichever dimension actually tripped `meter`.
fn budget_err(meter: &BudgetMeter) -> CurveError {
    CurveError::Budget(meter.tripped().unwrap_or(BudgetKind::Segments))
}

/// An affine fragment defined on the half-open interval `[start, end)`,
/// with value `v` at `start` and slope `r`. Used as a convolution /
/// deconvolution candidate before envelope computation.
#[derive(Debug, Clone, Copy)]
struct Part {
    start: Q,
    end: Q,
    v: Q,
    r: Q,
}

impl Part {
    fn eval(&self, t: Q) -> Q {
        self.v + self.r * (t - self.start)
    }
}

/// Explicit pieces of `c` truncated to `[0, h]`, as [`Part`]s carrying their
/// extents.
fn parts_of(c: &Curve, h: Q, meter: &BudgetMeter) -> Result<Vec<Part>, CurveError> {
    let pieces = c.try_pieces_upto(h, meter)?;
    let mut out = Vec::with_capacity(pieces.len());
    for (i, p) in pieces.iter().enumerate() {
        if p.start > h {
            break;
        }
        let end = pieces
            .get(i + 1)
            .map(|n| n.start)
            .unwrap_or_else(|| h + Q::ONE)
            .min(h + Q::ONE);
        out.push(Part {
            start: p.start,
            end,
            v: p.value,
            r: p.slope,
        });
    }
    Ok(out)
}

/// Lower or upper envelope of a set of partial affine fragments over
/// `[0, h]`. Every point of `[0, h]` must be covered by at least one part.
/// The envelope is computed per elementary interval (between consecutive
/// part endpoints), where the active parts are full lines.
fn envelope(
    parts: &[Part],
    h: Q,
    upper: bool,
    meter: &BudgetMeter,
) -> Result<Vec<Piece>, CurveError> {
    let mut events: Vec<Q> = parts
        .iter()
        .flat_map(|p| [p.start, p.end])
        .filter(|&t| !t.is_negative() && t <= h)
        .collect();
    events.push(Q::ZERO);
    events.push(h);
    events.sort();
    events.dedup();

    let mut out: Vec<Piece> = Vec::new();
    let push = |p: Piece, out: &mut Vec<Piece>| {
        if let Some(last) = out.last() {
            if last.slope == p.slope && last.eval(p.start) == p.value {
                return;
            }
        }
        out.push(p);
    };

    // One scratch buffer for the whole walk: the per-interval line set is
    // rebuilt in place instead of allocating a fresh Vec per elementary
    // interval (the inner-loop allocation dominated profiles on large
    // horizons).
    let mut lines: Vec<(Q, Q)> = Vec::new();
    for w in events.windows(2) {
        let (x1, x2) = (w[0], w[1]);
        // Active parts cover the whole elementary interval; within it each
        // is a full line, stored as (value at x1, slope).
        lines.clear();
        lines.extend(
            parts
                .iter()
                .filter(|p| p.start <= x1 && p.end >= x2)
                .map(|p| (p.eval(x1), p.r)),
        );
        assert!(
            !lines.is_empty(),
            "envelope: no candidate covers [{x1}, {x2})"
        );
        let value_at = |line: (Q, Q), x: Q| line.0 + line.1 * (x - x1);
        // Walk the envelope from x1 towards x2, re-selecting the extreme
        // line at every switch point (ties broken by slope so the envelope
        // stays extreme after the tie).
        let mut x = x1;
        loop {
            if !meter.tick_segment() {
                return Err(budget_err(meter));
            }
            let cur = lines
                .iter()
                .copied()
                .map(|l| (value_at(l, x), l.1))
                .reduce(|a, b| {
                    let a_better = if upper {
                        a.0 > b.0 || (a.0 == b.0 && a.1 > b.1)
                    } else {
                        a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
                    };
                    if a_better {
                        a
                    } else {
                        b
                    }
                })
                .expect("non-empty");
            push(Piece::new(x, cur.0, cur.1), &mut out);
            // Earliest strict crossing by a line that overtakes `cur`.
            let mut next_x: Option<Q> = None;
            for &l in &lines {
                let overtakes = if upper { l.1 > cur.1 } else { l.1 < cur.1 };
                if !overtakes {
                    continue;
                }
                let vx = value_at(l, x);
                // `cur` is extreme at x, so the candidate sits on the wrong
                // side now and can only cross later.
                let gap = if upper { cur.0 - vx } else { vx - cur.0 };
                if gap.is_negative() || gap.is_zero() {
                    continue; // ties at x are resolved by the re-selection
                }
                let cross = x + gap / (cur.1 - l.1).abs();
                if cross > x && cross < x2 {
                    next_x = Some(match next_x {
                        None => cross,
                        Some(b) => b.min(cross),
                    });
                }
            }
            match next_x {
                None => break,
                Some(nx) => x = nx,
            }
        }
    }
    // The loop above covers [0, h) with right-continuous pieces; the point
    // `h` itself needs its own evaluation (the true function may jump at a
    // part-domain boundary landing exactly on `h`).
    let at_h = parts
        .iter()
        .filter(|p| p.start <= h && p.end > h)
        .map(|p| (p.eval(h), p.r))
        .reduce(|a, b| {
            let a_better = if upper {
                a.0 > b.0 || (a.0 == b.0 && a.1 > b.1)
            } else {
                a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
            };
            if a_better {
                a
            } else {
                b
            }
        });
    if let Some((v, r)) = at_h {
        push(Piece::new(h, v, r), &mut out);
    }
    Ok(out)
}

impl Curve {
    /// (min,+) convolution `self ⊗ other`, **exact on `[0, h]`**. Beyond `h`
    /// the returned curve continues affinely from its last piece and must
    /// not be relied upon.
    ///
    /// # Examples
    ///
    /// ```
    /// use srtw_minplus::{Curve, Q, q};
    /// // Composing two rate-latency servers adds latencies and takes the
    /// // slower rate.
    /// let b1 = Curve::rate_latency(Q::int(2), Q::int(1));
    /// let b2 = Curve::rate_latency(Q::int(3), Q::int(2));
    /// let c = b1.conv_upto(&b2, Q::int(50));
    /// for t in 0..=50 {
    ///     let t = Q::int(t);
    ///     let expect = Curve::rate_latency(Q::int(2), Q::int(3)).eval(t);
    ///     assert_eq!(c.eval(t), expect);
    /// }
    /// ```
    #[must_use]
    pub fn conv_upto(&self, other: &Curve, h: Q) -> Curve {
        self.try_conv_upto(other, h, &BudgetMeter::unlimited())
            .expect("unmetered conv_upto failed")
    }

    /// Fallible, budgeted [`Curve::conv_upto`]: ticks the segment budget
    /// per generated candidate fragment and per envelope piece, surfacing
    /// exhaustion (and `i128` overflow) as errors instead of grinding
    /// through a quadratic candidate set on an oversized horizon.
    ///
    /// When both operands share a [`Shape`] class (both concave or both
    /// convex — detected once and cached on the curve), an O(n+m) fast
    /// path replaces the quadratic candidate-envelope construction; the
    /// result is the same function on `[0, h]`, and the segment budget is
    /// ticked proportionally to the (much smaller) work actually done.
    pub fn try_conv_upto(
        &self,
        other: &Curve,
        h: Q,
        meter: &BudgetMeter,
    ) -> Result<Curve, CurveError> {
        assert!(!h.is_negative(), "conv_upto with negative horizon");
        match (self.shape(), other.shape()) {
            (Shape::Concave | Shape::Both, Shape::Concave | Shape::Both) => {
                self.conv_concave(other, meter)
            }
            (Shape::Convex | Shape::Both, Shape::Convex | Shape::Both)
                if matches!(self.tail(), Tail::Affine)
                    && matches!(other.tail(), Tail::Affine) =>
            {
                self.conv_convex(other, h, meter)
            }
            _ => self.try_conv_upto_general(other, h, meter),
        }
    }

    /// Concave ⊗ concave in O(n+m): write `f = f(0) + F`, `g = g(0) + G`
    /// with `F, G` concave, non-decreasing and zero at 0. The chord
    /// inequality `F(s) ≥ (s/t)·F(t)` makes `F(s) + G(t−s)` a convex
    /// combination lower-bounded by `min(F(t), G(t))`, and the split points
    /// `s ∈ {0, t}` attain it, so `F ⊗ G = min(F, G)` and
    /// `f ⊗ g = min(g(0) + f, f(0) + g)` — exact **everywhere**, not just
    /// on `[0, h]` (concave curves here have affine tails by definition).
    fn conv_concave(&self, other: &Curve, meter: &BudgetMeter) -> Result<Curve, CurveError> {
        let f0 = self.eval(Q::ZERO);
        let g0 = other.eval(Q::ZERO);
        let shifted = |c: &Curve, dv: Q| {
            let pieces = c
                .pieces()
                .iter()
                .map(|p| Piece::new(p.start, p.value + dv, p.slope))
                .collect();
            Curve::raw(pieces, c.tail())
        };
        let out = shifted(self, g0).pointwise_min(&shifted(other, f0));
        for _ in out.pieces() {
            if !meter.tick_segment() {
                return Err(budget_err(meter));
            }
        }
        Ok(out)
    }

    /// Convex ⊗ convex in O((n+m) log(n+m)): the inf-convolution of convex
    /// piecewise-affine functions starts at `f(0) + g(0)` and concatenates
    /// both operands' segments in ascending slope order (spending time on
    /// the cheapest available slope first is optimal exactly when slopes
    /// only ever get worse). Both operands are continuous (convexity
    /// forbids upward jumps, validation forbids downward ones) with affine
    /// tails, so segment lists cover `[0, h]` and the merge is exact there.
    fn conv_convex(&self, other: &Curve, h: Q, meter: &BudgetMeter) -> Result<Curve, CurveError> {
        let pa = parts_of(self, h, meter)?;
        let pb = parts_of(other, h, meter)?;
        // (slope, length) segments; parts_of caps the last extent at h+1,
        // so the combined lengths cover [0, h] with room to spare.
        let mut segs: Vec<(Q, Q)> = Vec::with_capacity(pa.len() + pb.len());
        segs.extend(pa.iter().map(|p| (p.r, p.end - p.start)));
        segs.extend(pb.iter().map(|p| (p.r, p.end - p.start)));
        segs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut pieces: Vec<Piece> = Vec::with_capacity(segs.len());
        let mut t = Q::ZERO;
        let mut v = self.eval(Q::ZERO) + other.eval(Q::ZERO);
        for &(r, len) in &segs {
            if t > h {
                break;
            }
            if !meter.tick_segment() {
                return Err(budget_err(meter));
            }
            pieces.push(Piece::new(t, v, r));
            t = t + len;
            v = v + r * len;
        }
        Ok(Curve::new(pieces, Tail::Affine).expect("convex conv produced an invalid curve"))
    }

    /// The shape-oblivious quadratic candidate-envelope convolution.
    /// Exposed (hidden from docs) so benchmarks can compare the fast
    /// paths against it on the same operands.
    #[doc(hidden)]
    #[must_use]
    pub fn conv_upto_general(&self, other: &Curve, h: Q) -> Curve {
        self.try_conv_upto_general(other, h, &BudgetMeter::unlimited())
            .expect("unmetered conv_upto failed")
    }

    fn try_conv_upto_general(
        &self,
        other: &Curve,
        h: Q,
        meter: &BudgetMeter,
    ) -> Result<Curve, CurveError> {
        let pa = parts_of(self, h, meter)?;
        let pb = parts_of(other, h, meter)?;
        let mut cand: Vec<Part> = Vec::with_capacity(pa.len() * pb.len() * 2);
        for a in &pa {
            for b in &pb {
                if !meter.tick_segment() {
                    return Err(budget_err(meter));
                }
                let t0 = a.start + b.start;
                if t0 > h {
                    continue;
                }
                let t1 = a.end + b.end; // exclusive
                let v0 = a.v + b.v;
                let (rmin, rmax, len_min) = if a.r <= b.r {
                    (a.r, b.r, a.end - a.start)
                } else {
                    (b.r, a.r, b.end - b.start)
                };
                let mid = t0 + len_min;
                if mid >= t1 {
                    cand.push(Part {
                        start: t0,
                        end: t1,
                        v: v0,
                        r: rmin,
                    });
                } else {
                    cand.push(Part {
                        start: t0,
                        end: mid,
                        v: v0,
                        r: rmin,
                    });
                    cand.push(Part {
                        start: mid,
                        end: t1,
                        v: v0 + rmin * len_min,
                        r: rmax,
                    });
                }
            }
        }
        let pieces = envelope(&cand, h, false, meter)?;
        Ok(Curve::new(pieces, Tail::Affine).expect("conv_upto produced an invalid curve"))
    }

    /// (min,+) convolution, exact everywhere, for two **ultimately affine**
    /// curves. Returns [`CurveError::Unsupported`] if either operand has a
    /// periodic tail with positive oscillation (use [`Curve::conv_upto`]
    /// with an explicit horizon instead).
    pub fn conv(&self, other: &Curve) -> Result<Curve, CurveError> {
        if matches!(self.tail(), Tail::Periodic { .. })
            || matches!(other.tail(), Tail::Periodic { .. })
        {
            return Err(CurveError::Unsupported {
                reason: "exact tail-to-infinity convolution requires ultimately affine operands",
            });
        }
        // Beyond the sum of transient lengths every unbounded candidate is
        // affine with slope ≥ min(ra, rb); the envelope settles once the
        // minimum-rate line undercuts every other candidate. A safe horizon:
        // twice the transient sum plus the largest crossing offset, found by
        // growing the horizon until the final slope matches.
        let ra = self.rate();
        let rb = other.rate();
        let target = ra.min(rb);
        let mut h = (self.tail_start() + other.tail_start() + Q::ONE) * Q::TWO;
        for _ in 0..64 {
            let c = self.conv_upto(other, h);
            let last = *c.pieces().last().expect("non-empty");
            if last.slope == target && last.start < h {
                // The last explicit piece already runs at the long-run rate;
                // verify it persists by checking a doubled horizon agrees.
                let c2 = self.conv_upto(other, h * Q::TWO);
                if c2.eval(h * Q::TWO) == c.eval_extended(h * Q::TWO) {
                    return Ok(c);
                }
            }
            h *= Q::TWO;
        }
        Err(CurveError::Unsupported {
            reason: "convolution did not settle (is a rate negative or inconsistent?)",
        })
    }

    /// Evaluates the affine extension of the last explicit piece at `t`
    /// (used internally to confirm tail settlement).
    fn eval_extended(&self, t: Q) -> Q {
        self.pieces().last().expect("non-empty").eval(t)
    }

    /// (min,+) deconvolution `self ⊘ other`, exact on `[0, h]`, with the
    /// inner supremum `sup_u f(t+u) − g(u)` searched over `u ∈ [0, u_cap]`.
    ///
    /// The caller must supply a `u_cap` beyond which the supremum cannot
    /// improve (for a stable system: any bound on the maximum busy-window
    /// length). [`Curve::deconv`] derives such a cap automatically.
    ///
    /// The computation decomposes the bivariate objective by operand piece
    /// pairs: within each feasibility region the objective is affine in
    /// `u`, so its supremum is a value (or one-sided limit) at one of four
    /// canonical points; each contributes an affine candidate in `t`, and
    /// the result is their exact upper envelope.
    #[must_use]
    pub fn deconv_upto(&self, other: &Curve, h: Q, u_cap: Q) -> Curve {
        self.try_deconv_upto(other, h, u_cap, &BudgetMeter::unlimited())
            .expect("unmetered deconv_upto failed")
    }

    /// Fallible, budgeted [`Curve::deconv_upto`]: ticks the segment budget
    /// per region pair, surfacing exhaustion (and `i128` overflow) as
    /// errors.
    pub fn try_deconv_upto(
        &self,
        other: &Curve,
        h: Q,
        u_cap: Q,
        meter: &BudgetMeter,
    ) -> Result<Curve, CurveError> {
        assert!(!h.is_negative() && !u_cap.is_negative());
        let pa = parts_of(self, ck_add(h, u_cap)?, meter)?;
        let pb = parts_of(other, u_cap, meter)?;

        // Up to four candidates per region pair (see below); reserving once
        // keeps the inner loop allocation-free.
        let mut cand: Vec<Part> = Vec::with_capacity(pa.len() * pb.len() * 4);
        let mut add = |start: Q, end: Q, v_at_start: Q, r: Q| {
            let s = start.max(Q::ZERO);
            let e = end.min(h + Q::ONE);
            if s < e {
                cand.push(Part {
                    start: s,
                    end: e,
                    v: v_at_start + r * (s - start),
                    r,
                });
            }
        };

        for a in &pa {
            let (xk, xk1) = (a.start, a.end);
            for b in &pb {
                if !meter.tick_segment() {
                    return Err(budget_err(meter));
                }
                let ulo = b.start;
                if ulo > u_cap {
                    continue;
                }
                let uhi = b.end.min(u_cap);
                if uhi < ulo {
                    continue;
                }
                let a_at_xk = a.eval(xk);
                let a_at_xk1 = a.eval(xk1);
                let b_at_ulo = b.eval(ulo);
                let b_at_uhi = b.eval(uhi);
                // Within the region u ∈ [ulo, uhi], t+u ∈ [xk, xk1] the
                // objective is affine in u; its supremum for fixed t sits
                // at one of four canonical points, each contributing an
                // affine candidate in t:
                // 1. u pinned at the region's lower end.
                add(xk - ulo, xk1 - ulo, a_at_xk - b_at_ulo, a.r);
                // 2. u approaching the region's upper end (limit value).
                add(xk - uhi, xk1 - uhi, a_at_xk - b_at_uhi, a.r);
                // 3. t+u pinned at the a-piece's left boundary: u = xk − t.
                add(xk - uhi, xk - ulo, a_at_xk - b_at_uhi, b.r);
                // 4. t+u approaching the a-piece's right boundary:
                //    u = (xk1 − t)⁻ (limit value).
                add(xk1 - uhi, xk1 - ulo, a_at_xk1 - b_at_uhi, b.r);
            }
        }
        if cand.is_empty() {
            return Ok(Curve::constant(self.eval(Q::ZERO) - other.eval(Q::ZERO)));
        }
        let pieces = envelope(&cand, h, true, meter)?;
        Ok(Curve::new(pieces, Tail::Affine).expect("deconv_upto produced an invalid curve"))
    }

    /// (min,+) deconvolution with an automatically derived inner-supremum
    /// horizon, exact on `[0, h]`.
    ///
    /// Returns [`CurveError::Unsupported`] when `self.rate() > other.rate()`
    /// (the supremum diverges: the system is unstable).
    pub fn deconv(&self, other: &Curve, h: Q) -> Result<Curve, CurveError> {
        self.try_deconv(other, h, &BudgetMeter::unlimited())
    }

    /// Fallible, budgeted [`Curve::deconv`]: additionally surfaces `i128`
    /// overflow in the derived inner-supremum horizon (an lcm of the
    /// operands' periods) and budget exhaustion as errors.
    pub fn try_deconv(
        &self,
        other: &Curve,
        h: Q,
        meter: &BudgetMeter,
    ) -> Result<Curve, CurveError> {
        let ta = TailInfo::of(self);
        let tb = TailInfo::of(other);
        if ta.rate > tb.rate {
            return Err(CurveError::Unsupported {
                reason: "deconvolution diverges: left operand grows faster than right",
            });
        }
        let u_cap = if ta.rate == tb.rate {
            // The objective is eventually periodic in u; one aligned common
            // period beyond both tails suffices.
            ck_add(try_common_check_horizon(self, other)?, h)?
        } else {
            // Negative drift in u: beyond the settle point the objective is
            // below its value at small u. Bound via the tail lines.
            let (aup, ar) = ta.upper_line();
            let (blo, br) = tb.lower_line();
            // f(t+u) − g(u) ≤ aup + ar·(t+u) − blo − br·u; compare with the
            // value at u = 0 lower bound: f(t) − g(0) ≥ (alo + ar·t) − g(0).
            let (alo, _) = ta.lower_line();
            let g0 = other.eval(Q::ZERO);
            // Solve aup + ar(t+u) − blo − br·u ≤ alo + ar·t − g0 for u:
            // u ≥ (aup − blo − alo + g0) / (br − ar)
            let bound = (aup - blo - alo + g0) / (br - ar);
            bound.max(ta.s).max(tb.s) + Q::ONE
        };
        self.try_deconv_upto(other, h, u_cap, meter)
    }
}

impl Curve {
    /// Finitary sub-additive closure `f* = min_{n ≥ 1} f^{⊗n}`, exact on
    /// `[0, h]`.
    ///
    /// The closure is the tightest sub-additive curve below `f` (with the
    /// `n ≥ 1` convention, so `f*(0) = f(0)`); it is the canonical way to
    /// tighten an upper arrival curve. Computed by repeated squaring
    /// (`c ← min(c, c ⊗ c)`), which converges on the finite horizon in
    /// logarithmically many steps.
    ///
    /// # Panics
    ///
    /// Panics if the iteration fails to converge within 64 doublings
    /// (cannot happen for monotone curves with `f(0) ≥ 0`).
    ///
    /// # Examples
    ///
    /// ```
    /// use srtw_minplus::{Curve, Q, q};
    /// // A leaky-bucket pair: min(γ_{b1,r1}, γ_{b2,r2}) is generally not
    /// // sub-additive; its closure is the tight concave envelope.
    /// let f = Curve::affine(Q::int(4), q(1, 4)).pointwise_min(&Curve::affine(Q::ONE, Q::ONE));
    /// let g = f.subadditive_closure_upto(Q::int(40));
    /// for i in 0..=40 {
    ///     let t = Q::int(i);
    ///     assert!(g.eval(t) <= f.eval(t));
    /// }
    /// // Sub-additivity on the horizon:
    /// for a in 0..=20 {
    ///     for b in 0..=20 {
    ///         let (a, b) = (Q::int(a), Q::int(b));
    ///         assert!(g.eval(a + b) <= g.eval(a) + g.eval(b));
    ///     }
    /// }
    /// ```
    #[must_use]
    pub fn subadditive_closure_upto(&self, h: Q) -> Curve {
        // Equality on [0, h] only: beyond the horizon conv_upto's affine
        // extension carries no meaning and must not gate convergence.
        let equal_upto = |a: &Curve, b: &Curve| -> bool {
            let mut ts: Vec<Q> = a
                .pieces_upto(h)
                .iter()
                .chain(b.pieces_upto(h).iter())
                .map(|p| p.start)
                .filter(|&t| t <= h)
                .collect();
            ts.push(h);
            ts.sort();
            ts.dedup();
            ts.iter()
                .all(|&t| a.eval(t) == b.eval(t) && a.eval_left(t) == b.eval_left(t))
        };
        let mut c = self.clone();
        for _ in 0..64 {
            let next = c.pointwise_min(&c.conv_upto(&c, h));
            if equal_upto(&next, &c) {
                return c;
            }
            c = next;
        }
        panic!("subadditive closure did not converge within 64 doublings");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::q;

    /// Exact brute-force convolution: the infimum over a closed interval of
    /// a piecewise-affine objective is attained at a breakpoint of either
    /// operand or approached at its left limit, so evaluating value and
    /// left-limit combinations at all such candidates is exact.
    fn brute_conv(f: &Curve, g: &Curve, t: Q, _den: i128) -> Q {
        let mut cands: Vec<Q> = vec![Q::ZERO, t];
        for p in f.pieces_upto(t) {
            if p.start <= t {
                cands.push(p.start);
            }
        }
        for p in g.pieces_upto(t) {
            if p.start <= t {
                cands.push(p.start + Q::ZERO); // g breakpoint at u = start
            }
        }
        let mut best: Option<Q> = None;
        let probe = |v: Q, best: &mut Option<Q>| {
            *best = Some(match *best {
                None => v,
                Some(b) => b.min(v),
            });
        };
        for &c in &cands {
            // Candidate split points s = c (an f breakpoint) and s = t − c
            // (aligning a g breakpoint), with one-sided limits.
            for s in [c, t - c] {
                if s.is_negative() || s > t {
                    continue;
                }
                let u = t - s;
                probe(f.eval(s) + g.eval(u), &mut best);
                probe(f.eval_left(s) + g.eval(u), &mut best);
                probe(f.eval(s) + g.eval_left(u), &mut best);
            }
        }
        best.expect("non-empty candidates")
    }

    /// Brute-force deconvolution on a fine rational grid.
    fn brute_deconv(f: &Curve, g: &Curve, t: Q, u_cap: Q, den: i128) -> Q {
        let steps = (u_cap * Q::int(den)).floor();
        let mut best = f.eval(t) - g.eval(Q::ZERO);
        for i in 0..=steps {
            let u = q(i, den).min(u_cap);
            best = best.max(f.eval(t + u) - g.eval(u));
        }
        best
    }

    #[test]
    fn conv_rate_latency_pair_is_rate_latency() {
        let b1 = Curve::rate_latency(Q::int(2), Q::int(1));
        let b2 = Curve::rate_latency(Q::int(3), Q::int(2));
        let c = b1.conv(&b2).unwrap();
        let expect = Curve::rate_latency(Q::int(2), Q::int(3));
        for i in 0..200 {
            let t = q(i, 2);
            assert_eq!(c.eval(t), expect.eval(t), "at t = {t}");
        }
        assert_eq!(c.rate(), Q::int(2));
    }

    #[test]
    fn conv_with_zero_latency_identity_like() {
        // β ⊗ (affine through origin with huge rate) ≈ β on the prefix.
        let b = Curve::rate_latency(Q::int(2), Q::int(3));
        let id = Curve::affine(Q::ZERO, Q::int(1000));
        let c = b.conv_upto(&id, Q::int(40));
        for i in 0..80 {
            let t = q(i, 2);
            assert_eq!(c.eval(t), brute_conv(&b, &id, t, 8), "at t = {t}");
        }
    }

    #[test]
    fn conv_upto_matches_brute_force_nonconvex() {
        // Staircase (non-convex) against rate-latency.
        let a = Curve::staircase(Q::int(4), Q::int(3));
        let b = Curve::rate_latency(Q::ONE, Q::int(2));
        let c = a.conv_upto(&b, Q::int(24));
        for i in 0..=96 {
            let t = q(i, 4);
            assert_eq!(c.eval(t), brute_conv(&a, &b, t, 8), "at t = {t}");
        }
    }

    #[test]
    fn conv_upto_two_staircases() {
        let a = Curve::staircase(Q::int(3), Q::int(2));
        let b = Curve::staircase(Q::int(5), Q::ONE);
        let c = a.conv_upto(&b, Q::int(30));
        for i in 0..=120 {
            let t = q(i, 4);
            assert_eq!(c.eval(t), brute_conv(&a, &b, t, 4), "at t = {t}");
        }
    }

    #[test]
    fn conv_is_commutative_on_prefix() {
        let a = Curve::staircase(Q::int(4), Q::int(3)).shift_up(Q::ONE);
        let b = Curve::rate_latency(q(3, 2), Q::int(5));
        let ab = a.conv_upto(&b, Q::int(40));
        let ba = b.conv_upto(&a, Q::int(40));
        for i in 0..=160 {
            let t = q(i, 4);
            assert_eq!(ab.eval(t), ba.eval(t), "at t = {t}");
        }
    }

    #[test]
    fn concave_fast_path_matches_general_and_brute() {
        // Leaky-bucket pair (concave): min(γ_{4,1/4}, γ_{1,1}).
        let f = Curve::affine(Q::int(4), q(1, 4)).pointwise_min(&Curve::affine(Q::ONE, Q::ONE));
        let g = Curve::affine(Q::int(2), q(1, 2));
        assert!(f.is_concave() && g.is_concave());
        let h = Q::int(40);
        let fast = f.conv_upto(&g, h);
        let gen = f.conv_upto_general(&g, h);
        for i in 0..=160 {
            let t = q(i, 4);
            assert_eq!(fast.eval(t), gen.eval(t), "general mismatch at t = {t}");
            assert_eq!(fast.eval(t), brute_conv(&f, &g, t, 4), "brute mismatch at t = {t}");
            assert_eq!(fast.eval_left(t), gen.eval_left(t), "left mismatch at t = {t}");
        }
        // Self-convolution of a many-piece concave polyline.
        let many = Curve::min_of(&[
            Curve::affine(Q::int(10), q(1, 8)),
            Curve::affine(Q::int(6), q(1, 3)),
            Curve::affine(Q::int(3), Q::ONE),
            Curve::affine(Q::ONE, Q::int(3)),
        ]);
        assert!(many.is_concave());
        let fast = many.conv_upto(&many, h);
        let gen = many.conv_upto_general(&many, h);
        for i in 0..=160 {
            let t = q(i, 4);
            assert_eq!(fast.eval(t), gen.eval(t), "at t = {t}");
        }
    }

    #[test]
    fn convex_fast_path_matches_general_and_brute() {
        let f = Curve::rate_latency(Q::int(2), Q::int(3));
        let g = Curve::rate_latency(Q::int(5), Q::ONE);
        assert!(f.is_convex() && g.is_convex());
        let h = Q::int(50);
        let fast = f.conv_upto(&g, h);
        let gen = f.conv_upto_general(&g, h);
        for i in 0..=200 {
            let t = q(i, 4);
            assert_eq!(fast.eval(t), gen.eval(t), "general mismatch at t = {t}");
            assert_eq!(fast.eval(t), brute_conv(&f, &g, t, 4), "brute mismatch at t = {t}");
        }
        // Multi-piece convex polylines (max of affine curves).
        let cf = Curve::rate_latency(Q::ONE, Q::int(2))
            .pointwise_max(&Curve::affine(Q::int(-10), Q::int(3)));
        let cg = Curve::rate_latency(q(1, 2), Q::ONE)
            .pointwise_max(&Curve::affine(Q::int(-6), Q::int(2)));
        assert!(cf.is_convex() && cg.is_convex());
        let fast = cf.conv_upto(&cg, h);
        let gen = cf.conv_upto_general(&cg, h);
        for i in 0..=200 {
            let t = q(i, 4);
            assert_eq!(fast.eval(t), gen.eval(t), "at t = {t}");
        }
    }

    #[test]
    fn mixed_shapes_take_the_general_path_and_agree() {
        // Concave ⊗ convex has no fast path; dispatch must agree with the
        // general entry point by construction.
        let f = Curve::affine(Q::int(4), q(1, 4)).pointwise_min(&Curve::affine(Q::ONE, Q::ONE));
        let g = Curve::rate_latency(Q::int(2), Q::int(3));
        let h = Q::int(30);
        let a = f.conv_upto(&g, h);
        let b = f.conv_upto_general(&g, h);
        for i in 0..=120 {
            let t = q(i, 4);
            assert_eq!(a.eval(t), b.eval(t), "at t = {t}");
            assert_eq!(a.eval(t), brute_conv(&f, &g, t, 4), "brute at t = {t}");
        }
    }

    #[test]
    fn fast_paths_respect_segment_budget() {
        use crate::meter::Budget;
        let f = Curve::affine(Q::int(4), q(1, 4)).pointwise_min(&Curve::affine(Q::ONE, Q::ONE));
        let meter = BudgetMeter::new(&Budget::default().with_max_segments(1));
        let got = f.try_conv_upto(&f, Q::int(1000), &meter);
        assert!(matches!(got, Err(CurveError::Budget(_))));
        let g = Curve::rate_latency(Q::int(2), Q::int(3));
        let meter = BudgetMeter::new(&Budget::default().with_max_segments(1));
        let got = g.try_conv_upto(&g, Q::int(1000), &meter);
        assert!(matches!(got, Err(CurveError::Budget(_))));
    }

    #[test]
    fn conv_rejects_periodic_tails() {
        let a = Curve::staircase(Q::int(4), Q::int(3));
        let b = Curve::rate_latency(Q::ONE, Q::int(2));
        assert!(matches!(a.conv(&b), Err(CurveError::Unsupported { .. })));
    }

    #[test]
    fn deconv_upto_matches_brute_force() {
        // Output arrival curve: α ⊘ β.
        let alpha = Curve::staircase(Q::int(5), Q::int(2));
        let beta = Curve::rate_latency(Q::ONE, Q::int(3)); // rate 1 > 2/5
        let d = alpha.deconv(&beta, Q::int(20)).unwrap();
        for i in 0..=80 {
            let t = q(i, 4);
            let brute = brute_deconv(&alpha, &beta, t, Q::int(60), 4);
            assert_eq!(d.eval(t), brute, "at t = {t}");
        }
    }

    #[test]
    fn deconv_equal_rates() {
        let alpha = Curve::staircase(Q::int(4), Q::int(2));
        let beta = Curve::affine(Q::ZERO, q(1, 2));
        let d = alpha.deconv(&beta, Q::int(16)).unwrap();
        for i in 0..=64 {
            let t = q(i, 4);
            let brute = brute_deconv(&alpha, &beta, t, Q::int(80), 4);
            assert_eq!(d.eval(t), brute, "at t = {t}");
        }
    }

    #[test]
    fn deconv_diverging_rejected() {
        let alpha = Curve::affine(Q::ZERO, Q::int(2));
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        assert!(matches!(
            alpha.deconv(&beta, Q::int(10)),
            Err(CurveError::Unsupported { .. })
        ));
    }

    #[test]
    fn conv_monotone_in_operands() {
        // f ≤ f' ⇒ f ⊗ g ≤ f' ⊗ g (checked pointwise on a prefix).
        let f = Curve::rate_latency(Q::ONE, Q::int(4));
        let f2 = Curve::rate_latency(Q::ONE, Q::int(2)); // f ≤ f2
        let g = Curve::staircase(Q::int(3), Q::int(2));
        let c1 = f.conv_upto(&g, Q::int(30));
        let c2 = f2.conv_upto(&g, Q::int(30));
        for i in 0..=120 {
            let t = q(i, 4);
            assert!(c1.eval(t) <= c2.eval(t), "at t = {t}");
        }
    }

    #[test]
    fn closure_is_subadditive_and_idempotent() {
        let f = Curve::affine(Q::int(5), q(1, 5))
            .pointwise_min(&Curve::affine(Q::ONE, Q::int(2)));
        let h = Q::int(30);
        let g = f.subadditive_closure_upto(h);
        for a in 0..=60 {
            for b in 0..=60 {
                let (a, b) = (q(a, 2), q(b, 2));
                if a + b > h {
                    continue;
                }
                assert!(
                    g.eval(a + b) <= g.eval(a) + g.eval(b),
                    "not subadditive at {a} + {b}"
                );
                assert!(g.eval(a) <= f.eval(a));
            }
        }
        let gg = g.subadditive_closure_upto(h);
        for i in 0..=60 {
            let t = q(i, 2);
            assert_eq!(g.eval(t), gg.eval(t), "not idempotent at {t}");
        }
    }

    #[test]
    fn closure_of_subadditive_curve_is_identity() {
        // Staircases are sub-additive: the closure changes nothing.
        let f = Curve::staircase(Q::int(5), Q::int(2));
        let g = f.subadditive_closure_upto(Q::int(40));
        for i in 0..=80 {
            let t = q(i, 2);
            if t > Q::int(40) {
                break;
            }
            assert_eq!(g.eval(t), f.eval(t), "at {t}");
        }
    }
}
