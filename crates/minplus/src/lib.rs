//! # srtw-minplus — exact (min,+) curve algebra for real-time calculus
//!
//! This crate provides the mathematical substrate of the `srtw` workspace:
//! exact rational arithmetic ([`Q`]), monotone piecewise-affine curves with
//! ultimately-affine or ultimately-periodic tails ([`Curve`]), and the
//! (min,+) operators of Network / Real-Time Calculus:
//!
//! * pointwise [`Curve::pointwise_min`] / [`Curve::pointwise_max`] /
//!   [`Curve::pointwise_add`], exact for **all** tail combinations,
//! * (min,+) convolution [`Curve::conv`] / [`Curve::conv_upto`] and
//!   deconvolution [`Curve::deconv`] / [`Curve::deconv_upto`] (finitary:
//!   exact on a caller-chosen prefix, which is all a busy-window delay
//!   analysis ever inspects),
//! * the performance bounds [`Curve::hdev`] (delay), [`Curve::vdev`]
//!   (backlog), and the lower pseudo-inverse [`Curve::pseudo_inverse`],
//! * the leftover-service closure [`Curve::sub_clamped_monotone`].
//!
//! All computations are exact — no floating point is involved anywhere in an
//! analysis; `f64` appears only in display/plot helpers.
//!
//! # Example
//!
//! ```
//! use srtw_minplus::{Curve, Ext, Q};
//!
//! // A periodic demand of 2 units of work every 4 time units …
//! let alpha = Curve::staircase(Q::int(4), Q::int(2));
//! // … served by a unit-rate server that may be blocked for 3 time units.
//! let beta = Curve::rate_latency(Q::ONE, Q::int(3));
//!
//! // Worst-case delay and backlog:
//! assert_eq!(alpha.hdev(&beta), Ext::Finite(Q::int(5)));
//! assert_eq!(alpha.vdev(&beta), Ext::Finite(Q::int(3)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod conv;
mod curve;
mod dev;
mod error;
mod extended;
mod meter;
mod ops;
mod ratio;
mod stream;

pub use curve::{Curve, Piece, Tail};
pub use error::{ArithmeticError, CurveError};
pub use extended::Ext;
pub use meter::{
    Budget, BudgetKind, BudgetMeter, CancelToken, FaultKind, FaultPlan, CLOCK_STRIDE,
};
pub use ratio::{q, ParseQError, Q};
pub use stream::{CurveStream, PieceBuf, Pipe, Unroll, INLINE_PIECES};
