//! A fixed worker pool draining a queue of supervised jobs.
//!
//! Workers claim jobs from a shared atomic cursor, so input order is the
//! claim order and results are reported in input order regardless of which
//! worker finished first. With `fail_fast`, the first failed job stops the
//! claim cursor; jobs never claimed are reported as skipped.

use crate::job::{JobOutcome, JobSpec, JobStatus};
use crate::ladder::{run_supervised, SupervisorConfig};
use crate::report::BatchReport;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

/// Configuration of one batch run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchConfig {
    /// Number of concurrent supervisor workers (clamped to at least 1).
    pub jobs: usize,
    /// The supervision applied to every job.
    pub supervisor: SupervisorConfig,
    /// Stop claiming new jobs as soon as one job fails every rung; jobs
    /// not yet claimed are reported as [`JobStatus::Skipped`].
    pub fail_fast: bool,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            jobs: 1,
            supervisor: SupervisorConfig::default(),
            fail_fast: false,
        }
    }
}

/// An outcome observer: called once per finished job, with the job's
/// input index, before the outcome is stored. This is the journalling
/// hook — the observer runs on the worker thread that finished the job,
/// so a durable append happens *before* the batch moves on.
pub type OutcomeObserver = Arc<dyn Fn(usize, &JobOutcome) + Send + Sync>;

/// Runs every job through the supervised ladder on a pool of
/// `cfg.jobs` workers and aggregates the outcomes (in input order) into
/// a [`BatchReport`]. Individual job failures never propagate as panics
/// or errors — they are data in the report.
pub fn run_batch(specs: Vec<JobSpec>, cfg: &BatchConfig) -> BatchReport {
    run_batch_observed(specs, cfg, None)
}

/// [`run_batch`] with an optional per-outcome observer (see
/// [`OutcomeObserver`]).
pub fn run_batch_observed(
    specs: Vec<JobSpec>,
    cfg: &BatchConfig,
    observer: Option<OutcomeObserver>,
) -> BatchReport {
    let started = Instant::now();
    let total = specs.len();
    let specs = Arc::new(specs);
    let next = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let results: Arc<Mutex<Vec<Option<JobOutcome>>>> =
        Arc::new(Mutex::new((0..total).map(|_| None).collect()));

    let workers = cfg.jobs.max(1).min(total.max(1));
    let mut handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let specs = Arc::clone(&specs);
        let next = Arc::clone(&next);
        let stop = Arc::clone(&stop);
        let results = Arc::clone(&results);
        let sup = cfg.supervisor.clone();
        let fail_fast = cfg.fail_fast;
        let observer = observer.clone();
        handles.push(thread::spawn(move || loop {
            if stop.load(Ordering::Acquire) {
                return;
            }
            let i = next.fetch_add(1, Ordering::AcqRel);
            if i >= specs.len() {
                return;
            }
            let outcome = run_supervised(&specs[i], &sup);
            if let Some(obs) = &observer {
                obs(i, &outcome);
            }
            if fail_fast && outcome.status == JobStatus::Failed {
                stop.store(true, Ordering::Release);
            }
            results.lock().unwrap()[i] = Some(outcome);
        }));
    }
    for h in handles {
        // A worker panicking would be a supervisor bug (attempts are
        // unwind-contained); treat it like any other crash and keep the
        // batch alive — the job slot stays `None` and is reported skipped.
        let _ = h.join();
    }

    let results = Arc::try_unwrap(results)
        .expect("workers joined")
        .into_inner()
        .unwrap();
    let jobs = results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|| JobOutcome::skipped(specs[i].name.clone())))
        .collect();
    BatchReport {
        jobs,
        wall: started.elapsed(),
    }
}
