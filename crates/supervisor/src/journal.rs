//! Append-only write-ahead journal of per-job batch outcomes.
//!
//! The journal makes a batch run crash-recoverable: every finished job is
//! appended as one self-contained record and fsync'd before the batch
//! moves on, so a `kill -9` (or an injected fault) loses at most the job
//! that was in flight. A later `--resume` replays the journal, skips the
//! already-completed jobs, and produces a final report byte-identical to
//! an uninterrupted run — each record carries the job's rendered JSON
//! subtree verbatim, and `srtw_core::Json` rendering is context-free, so
//! splicing replayed text next to freshly rendered text is exact.
//!
//! ## On-disk format
//!
//! ```text
//! header: b"SRTWJRNL" | u32 LE version | u64 LE manifest digest
//! record: u32 LE payload length | u32 LE CRC-32 of payload | payload
//! ```
//!
//! The payload is a length-prefixed binary encoding of the outcome's
//! replay-relevant fields (name, status, rung display, attempt count,
//! wall-clock bits, error, rendered JSON). Records are written with a
//! single `write` call in append mode so concurrent appenders (replicas
//! sharing one journal) interleave whole frames, then `sync_data`'d.
//!
//! ## Recovery policy
//!
//! Recovery never panics and never invents a completion:
//!
//! - missing or malformed header → empty recovery plus a warning;
//! - a frame whose declared length overruns the file → torn tail: stop,
//!   warn, keep everything before it;
//! - a CRC mismatch with intact framing → skip that record, warn, keep
//!   scanning (a flipped bit loses one job, not the journal);
//! - an undecodable payload with a valid CRC → skip and warn;
//! - duplicate job names → keep the first (records are immutable facts;
//!   a re-run of an already-journaled job changes nothing).

use crate::job::{JobOutcome, JobStatus};
use crate::report::{BatchCounts, BatchStatus};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::time::Duration;

/// Magic bytes opening every journal file.
pub const JOURNAL_MAGIC: &[u8; 8] = b"SRTWJRNL";
/// Current on-disk format version.
pub const JOURNAL_VERSION: u32 = 1;
/// Header size: magic + version + manifest digest.
const HEADER_BYTES: usize = 8 + 4 + 8;
/// Upper bound on a single record payload; larger declared lengths are
/// treated as corruption (a random 4-byte length would otherwise make
/// recovery "wait" for gigabytes that never existed).
const MAX_RECORD_BYTES: usize = 1 << 26;

/// CRC-32 (IEEE, reflected, polynomial `0xEDB88320`) lookup table,
/// computed at compile time so the crate stays dependency-free.
static CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 checksum of `bytes` (IEEE polynomial, as used by gzip/zip).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// 64-bit FNV-1a digest, used to key a journal to its manifest: resuming
/// against a journal written for a different job list is refused.
pub fn digest64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Frames a payload for append: `u32 LE len | u32 LE CRC-32 | payload`.
/// This is the journal's (and the persist store's) shared wire discipline
/// — one frame per `write` call, `sync_data`'d before the append is
/// reported durable.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One scanned frame from a `len | crc | payload` byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScannedFrame<'a> {
    /// A structurally whole frame whose CRC matches.
    Payload {
        /// Byte offset of the frame's length word in the scanned image.
        offset: usize,
        /// The frame's payload bytes.
        payload: &'a [u8],
    },
    /// A structurally whole frame whose CRC does not match: skip one
    /// record, keep scanning — framing is still trustworthy.
    BadCrc {
        /// Byte offset of the frame's length word.
        offset: usize,
    },
    /// A frame whose declared length overruns the image (or is absurd):
    /// either a torn tail or a corrupt length word. Frame boundaries are
    /// unrecoverable from here; scanning stops after this item.
    Torn {
        /// Byte offset where the broken frame starts.
        offset: usize,
        /// The length the frame claimed.
        declared: usize,
        /// Payload bytes actually available past the frame header.
        available: usize,
    },
    /// Fewer than 8 trailing bytes — not even a frame header. Scanning
    /// stops after this item.
    Trailing {
        /// Byte offset of the trailing fragment.
        offset: usize,
        /// How many bytes were left over.
        bytes: usize,
    },
}

/// Iterator over the `len | crc | payload` frames of an on-disk image,
/// starting after a caller-validated header. Shared by journal recovery
/// and the `srtw-persist` spill store so both speak one framing dialect.
#[derive(Debug)]
pub struct FrameScanner<'a> {
    bytes: &'a [u8],
    pos: usize,
    stopped: bool,
}

impl<'a> FrameScanner<'a> {
    /// Scans `bytes` starting at `start` (typically the header length).
    pub fn new(bytes: &'a [u8], start: usize) -> FrameScanner<'a> {
        FrameScanner {
            bytes,
            pos: start,
            stopped: false,
        }
    }

    /// Byte length of the structurally valid prefix from `start`: every
    /// whole frame, stopping where scanning would stop (torn or trailing
    /// tail). CRC-mismatched frames are structurally whole and count.
    pub fn valid_end(bytes: &[u8], start: usize) -> usize {
        let mut end = start;
        for item in FrameScanner::new(bytes, start) {
            match item {
                ScannedFrame::Payload { offset, payload } => end = offset + 8 + payload.len(),
                ScannedFrame::BadCrc { offset } => {
                    // Length is re-read to advance past the skipped frame.
                    let len =
                        u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
                    end = offset + 8 + len;
                }
                ScannedFrame::Torn { .. } | ScannedFrame::Trailing { .. } => break,
            }
        }
        end
    }
}

impl<'a> Iterator for FrameScanner<'a> {
    type Item = ScannedFrame<'a>;

    fn next(&mut self) -> Option<ScannedFrame<'a>> {
        if self.stopped || self.pos >= self.bytes.len() {
            return None;
        }
        let offset = self.pos;
        let rest = self.bytes.len() - offset;
        if rest < 8 {
            self.stopped = true;
            return Some(ScannedFrame::Trailing {
                offset,
                bytes: rest,
            });
        }
        let len = u32::from_le_bytes(self.bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(self.bytes[offset + 4..offset + 8].try_into().unwrap());
        if len > MAX_RECORD_BYTES || len > rest - 8 {
            self.stopped = true;
            return Some(ScannedFrame::Torn {
                offset,
                declared: len,
                available: rest - 8,
            });
        }
        let payload = &self.bytes[offset + 8..offset + 8 + len];
        self.pos = offset + 8 + len;
        if crc32(payload) != crc {
            return Some(ScannedFrame::BadCrc { offset });
        }
        Some(ScannedFrame::Payload { offset, payload })
    }
}

fn status_code(status: JobStatus) -> u8 {
    match status {
        JobStatus::Exact => 0,
        JobStatus::Degraded => 1,
        JobStatus::Failed => 2,
        JobStatus::Skipped => 3,
    }
}

fn status_from_code(code: u8) -> Option<JobStatus> {
    match code {
        0 => Some(JobStatus::Exact),
        1 => Some(JobStatus::Degraded),
        2 => Some(JobStatus::Failed),
        3 => Some(JobStatus::Skipped),
        _ => None,
    }
}

/// One journaled job outcome: the fields the final report needs, plus the
/// outcome's rendered JSON subtree stored verbatim for byte-exact replay.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// The job's name (the replay key).
    pub name: String,
    /// Final classification.
    pub status: JobStatus,
    /// `Rung` display text (e.g. `exact`, `budgeted(500 ms)`), if any.
    pub rung: Option<String>,
    /// Number of attempts the ladder made.
    pub attempts: u32,
    /// Wall-clock bits (`f64::to_bits` of seconds) — stored as bits so the
    /// replayed `{:.1}` rendering reproduces the original exactly.
    pub wall_bits: u64,
    /// The job's error text, if any.
    pub error: Option<String>,
    /// The outcome's `to_json()` rendering, verbatim.
    pub json: String,
}

impl JournalRecord {
    /// Captures a finished outcome as a journal record.
    pub fn from_outcome(outcome: &JobOutcome) -> JournalRecord {
        JournalRecord {
            name: outcome.name.clone(),
            status: outcome.status,
            rung: outcome.rung.map(|r| format!("{r}")),
            attempts: outcome.attempts.len() as u32,
            wall_bits: outcome.wall.as_secs_f64().to_bits(),
            error: outcome.error.clone(),
            json: format!("{}", outcome.to_json()),
        }
    }

    /// Wall-clock seconds of the job.
    pub fn wall_secs(&self) -> f64 {
        f64::from_bits(self.wall_bits)
    }

    /// The job's line in the human-readable batch report, identical to
    /// [`crate::BatchReport`]'s `Display` rendering of the same outcome.
    pub fn display_line(&self) -> String {
        let rung = match &self.rung {
            Some(r) => format!(" [{r}]"),
            None => String::new(),
        };
        let detail = match &self.error {
            Some(e) => format!(": {e}"),
            None => String::new(),
        };
        format!(
            "{:<9} {}{} ({} attempt{}, {:.1} ms){}",
            self.status.as_str(),
            self.name,
            rung,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.wall_secs() * 1e3,
            detail
        )
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.json.len());
        put_str(&mut out, &self.name);
        out.push(status_code(self.status));
        put_opt_str(&mut out, self.rung.as_deref());
        out.extend_from_slice(&self.attempts.to_le_bytes());
        out.extend_from_slice(&self.wall_bits.to_le_bytes());
        put_opt_str(&mut out, self.error.as_deref());
        put_str(&mut out, &self.json);
        out
    }

    fn decode(payload: &[u8]) -> Option<JournalRecord> {
        let mut cur = Cursor {
            buf: payload,
            pos: 0,
        };
        let name = cur.take_str()?;
        let status = status_from_code(cur.take_u8()?)?;
        let rung = cur.take_opt_str()?;
        let attempts = cur.take_u32()?;
        let wall_bits = cur.take_u64()?;
        let error = cur.take_opt_str()?;
        let json = cur.take_str()?;
        if cur.pos != payload.len() {
            return None;
        }
        Some(JournalRecord {
            name,
            status,
            rung,
            attempts,
            wall_bits,
            error,
            json,
        })
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
        None => out.push(0),
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn take_u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn take_u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn take_u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn take_str(&mut self) -> Option<String> {
        let len = self.take_u32()? as usize;
        if len > MAX_RECORD_BYTES {
            return None;
        }
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    fn take_opt_str(&mut self) -> Option<Option<String>> {
        match self.take_u8()? {
            0 => Some(None),
            1 => Some(Some(self.take_str()?)),
            _ => None,
        }
    }
}

/// Which way an injected journal fault breaks the write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalFaultKind {
    /// Truncate the record mid-frame (a crash between `write` and the
    /// record's final byte): the tail of the journal is torn.
    Torn,
    /// Flip one payload byte before writing the full frame: framing is
    /// intact but the CRC no longer matches.
    Corrupt,
}

/// Deterministic journal-write fault: breaks the `at_record`-th append
/// (1-based) and then reports the write as failed, simulating a crash at
/// exactly that point. Parsed from `torn@N` / `jcorrupt@N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalFault {
    /// Which append (1-based) to break.
    pub at_record: u64,
    /// How to break it.
    pub kind: JournalFaultKind,
}

impl JournalFault {
    /// Parses `torn@N` / `jcorrupt@N`. Returns `None` when the spec is not
    /// journal-fault grammar at all (so other fault layers can claim it),
    /// `Some(Err)` when it is but the count is malformed.
    pub fn parse(spec: &str) -> Option<Result<JournalFault, String>> {
        let (kind_str, n) = spec.split_once('@')?;
        let kind = match kind_str {
            "torn" => JournalFaultKind::Torn,
            "jcorrupt" => JournalFaultKind::Corrupt,
            _ => return None,
        };
        Some(match n.parse::<u64>() {
            Ok(at) if at >= 1 => Ok(JournalFault { at_record: at, kind }),
            _ => Err(format!(
                "bad journal fault '{spec}': expected {kind_str}@N with N >= 1"
            )),
        })
    }
}

impl fmt::Display for JournalFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            JournalFaultKind::Torn => "torn",
            JournalFaultKind::Corrupt => "jcorrupt",
        };
        write!(f, "{kind}@{}", self.at_record)
    }
}

/// Appends records to a journal, fsync'ing each one before reporting it
/// written. The file is opened in append mode and every record goes out
/// as a single `write`, so multiple processes (replicas sharing a
/// journal) interleave whole frames rather than bytes.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    appended: u64,
    fault: Option<JournalFault>,
}

impl JournalWriter {
    /// Creates (or truncates) a journal for the given manifest digest and
    /// writes the header durably.
    pub fn create(path: &Path, digest: u64) -> io::Result<JournalWriter> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut w = JournalWriter {
            file,
            appended: 0,
            fault: None,
        };
        let mut header = Vec::with_capacity(HEADER_BYTES);
        header.extend_from_slice(JOURNAL_MAGIC);
        header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        header.extend_from_slice(&digest.to_le_bytes());
        w.file.write_all(&header)?;
        w.file.sync_data()?;
        Ok(w)
    }

    /// Opens an existing journal for appending (the header is assumed to
    /// have been validated by [`recover`]).
    ///
    /// A torn tail — a partial frame left by a crash mid-write — is cut
    /// off first. Recovery stops scanning at a torn frame, so anything
    /// appended after one would be durable on disk yet invisible to every
    /// future resume. Structurally whole frames with bad CRCs are kept:
    /// recovery skips past those individually.
    pub fn open_append(path: &Path) -> io::Result<JournalWriter> {
        let bytes = fs::read(path)?;
        let keep = valid_prefix_len(&bytes) as u64;
        if keep < bytes.len() as u64 {
            let trunc = OpenOptions::new().write(true).open(path)?;
            trunc.set_len(keep)?;
            trunc.sync_data()?;
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(JournalWriter {
            file,
            appended: 0,
            fault: None,
        })
    }

    /// Arms a deterministic write fault. The counter is per-writer: a
    /// resumed run starts counting from its own first append, so
    /// `torn@1` on a resume breaks the first *new* record.
    pub fn set_fault(&mut self, fault: Option<JournalFault>) {
        self.fault = fault;
    }

    /// Appends one record durably. On success the record is framed,
    /// written in one call, and `sync_data`'d. An armed fault breaks this
    /// append as specified and returns an error — callers treat any
    /// append error as a crash (the journal's contents up to the failure
    /// are exactly what a real crash would leave behind).
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        let payload = record.encode();
        let mut frame = frame(&payload);
        self.appended += 1;
        if let Some(fault) = self.fault {
            if fault.at_record == self.appended {
                match fault.kind {
                    JournalFaultKind::Torn => {
                        // Stop mid-frame: keep the length word and roughly
                        // half the payload, exactly like a crash between
                        // write() and the final byte reaching the disk.
                        let cut = (8 + payload.len() / 2).min(frame.len() - 1);
                        frame.truncate(cut);
                    }
                    JournalFaultKind::Corrupt => {
                        let idx = 8 + payload.len() / 2;
                        frame[idx] ^= 0x20;
                    }
                }
                self.file.write_all(&frame)?;
                self.file.sync_data()?;
                return Err(io::Error::other(format!(
                    "injected journal fault {fault} fired on record {}",
                    self.appended
                )));
            }
        }
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        Ok(())
    }
}

/// One recovery warning, pinned to the byte offset where the damage was
/// found so replica logs are machine-greppable. Displays as
/// `byte OFFSET: MESSAGE`; callers prepend the uniform `srtw-persist:`
/// prefix and the file path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryWarning {
    /// Byte offset in the file where the problem starts.
    pub offset: usize,
    /// What was skipped or truncated.
    pub message: String,
}

impl fmt::Display for RecoveryWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

/// What [`recover`] salvaged from a journal.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// The manifest digest from the header (0 when the header was bad).
    pub digest: u64,
    /// Every intact record, de-duplicated keep-first by job name, in
    /// journal order.
    pub records: Vec<JournalRecord>,
    /// Notes about anything skipped or truncated, each pinned to the byte
    /// offset where the damage was found.
    pub warnings: Vec<RecoveryWarning>,
}

impl Recovery {
    /// Looks up the journaled outcome of a job by name.
    pub fn find(&self, name: &str) -> Option<&JournalRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    /// True when every name in `names` has a journaled record — the
    /// journal fully covers the manifest, so a replay can skip the
    /// supervisor entirely.
    pub fn covers<'n>(&self, names: impl IntoIterator<Item = &'n str>) -> bool {
        names.into_iter().all(|n| self.find(n).is_some())
    }
}

/// Reads a journal back, salvaging every intact record. Tolerates torn
/// tails, truncated records, and bit corruption per the module policy;
/// never panics. I/O errors reading the file itself are returned.
pub fn recover(path: &Path) -> io::Result<Recovery> {
    let bytes = std::fs::read(path)?;
    Ok(recover_bytes(&bytes))
}

/// [`recover`], but over an in-memory image (the fuzz suite's entry
/// point).
pub fn recover_bytes(bytes: &[u8]) -> Recovery {
    let mut rec = Recovery::default();
    if bytes.len() < HEADER_BYTES
        || &bytes[..8] != JOURNAL_MAGIC
        || u32::from_le_bytes(bytes[8..12].try_into().unwrap()) != JOURNAL_VERSION
    {
        rec.warnings.push(RecoveryWarning {
            offset: 0,
            message: "journal header missing or malformed; treating journal as empty".into(),
        });
        return rec;
    }
    rec.digest = u64::from_le_bytes(bytes[12..HEADER_BYTES].try_into().unwrap());
    let mut index = 0u64;
    for item in FrameScanner::new(bytes, HEADER_BYTES) {
        index += 1;
        match item {
            ScannedFrame::Trailing { offset, bytes } => {
                rec.warnings.push(RecoveryWarning {
                    offset,
                    message: format!(
                        "torn tail: {bytes} trailing byte(s) after record {} — dropped",
                        index - 1
                    ),
                });
            }
            ScannedFrame::Torn {
                offset,
                declared,
                available,
            } => {
                rec.warnings.push(RecoveryWarning {
                    offset,
                    message: format!(
                        "torn or corrupt frame at record {index} (declared {declared} bytes, \
                         {available} available) — journal truncated here"
                    ),
                });
            }
            ScannedFrame::BadCrc { offset } => {
                rec.warnings.push(RecoveryWarning {
                    offset,
                    message: format!("CRC mismatch on record {index} — record skipped"),
                });
            }
            ScannedFrame::Payload { offset, payload } => match JournalRecord::decode(payload) {
                Some(r) => {
                    if rec.records.iter().any(|have| have.name == r.name) {
                        rec.warnings.push(RecoveryWarning {
                            offset,
                            message: format!(
                                "duplicate record for job '{}' at record {index} — first kept",
                                r.name
                            ),
                        });
                    } else {
                        rec.records.push(r);
                    }
                }
                None => rec.warnings.push(RecoveryWarning {
                    offset,
                    message: format!(
                        "record {index} has a valid CRC but does not decode — record skipped"
                    ),
                }),
            },
        }
    }
    rec
}

/// Byte length of the journal's structurally valid prefix: the header
/// plus every whole frame, stopping where [`recover_bytes`] would stop
/// scanning (a torn or length-corrupt tail). CRC-mismatched frames are
/// structurally whole and count toward the prefix — recovery skips them
/// record-by-record without losing its place. A missing or malformed
/// header keeps the whole file: the callers that hit that case rebuild
/// the journal from scratch, and truncating here would destroy evidence.
fn valid_prefix_len(bytes: &[u8]) -> usize {
    if bytes.len() < HEADER_BYTES
        || &bytes[..8] != JOURNAL_MAGIC
        || u32::from_le_bytes(bytes[8..12].try_into().unwrap()) != JOURNAL_VERSION
    {
        return bytes.len();
    }
    FrameScanner::valid_end(bytes, HEADER_BYTES)
}

/// A batch report assembled from journal records (replayed and fresh
/// alike). Renders byte-identically to [`crate::BatchReport`] over the
/// same outcomes — the unit tests pin this equivalence — so a resumed
/// run's output matches an uninterrupted run's.
#[derive(Debug, Clone)]
pub struct JournaledReport {
    /// One record per input job, in input order.
    pub jobs: Vec<JournalRecord>,
    /// Wall-clock time of the (resumed) batch run.
    pub wall: Duration,
}

impl JournaledReport {
    /// Tallies the job outcomes.
    pub fn counts(&self) -> BatchCounts {
        let mut c = BatchCounts::default();
        for job in &self.jobs {
            match job.status {
                JobStatus::Exact => c.exact += 1,
                JobStatus::Degraded => c.degraded += 1,
                JobStatus::Failed => c.failed += 1,
                JobStatus::Skipped => c.skipped += 1,
            }
        }
        c
    }

    /// Overall classification (drives the CLI exit code).
    pub fn status(&self) -> BatchStatus {
        let c = self.counts();
        if c.failed > 0 || c.skipped > 0 {
            BatchStatus::SomeFailed
        } else if c.degraded > 0 {
            BatchStatus::SomeDegraded
        } else {
            BatchStatus::AllExact
        }
    }

    /// The report as JSON text, splicing each record's stored rendering
    /// verbatim into the `jobs` array.
    pub fn to_json_text(&self) -> String {
        let c = self.counts();
        let mut out = String::from("{\"jobs\":[");
        for (i, job) in self.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&job.json);
        }
        out.push_str("],\"summary\":");
        let summary = srtw_core::Json::object(vec![
            ("status", srtw_core::Json::str(self.status().as_str())),
            ("total", srtw_core::Json::Int(self.jobs.len() as i128)),
            ("exact", srtw_core::Json::Int(c.exact as i128)),
            ("degraded", srtw_core::Json::Int(c.degraded as i128)),
            ("failed", srtw_core::Json::Int(c.failed as i128)),
            ("skipped", srtw_core::Json::Int(c.skipped as i128)),
            (
                "wall_ms",
                srtw_core::Json::Float(self.wall.as_secs_f64() * 1e3),
            ),
        ]);
        out.push_str(&format!("{summary}"));
        out.push('}');
        out
    }
}

impl fmt::Display for JournaledReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for job in &self.jobs {
            writeln!(f, "{}", job.display_line())?;
        }
        let c = self.counts();
        write!(
            f,
            "batch: {} job(s) — {} exact, {} degraded, {} failed, {} skipped in {:.1} ms",
            self.jobs.len(),
            c.exact,
            c.degraded,
            c.failed,
            c.skipped,
            self.wall.as_secs_f64() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Attempt, AttemptStatus, Rung};
    use crate::report::BatchReport;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("srtw-journal-{}-{name}", std::process::id()));
        p
    }

    fn outcome(name: &str, status: JobStatus) -> JobOutcome {
        let (rung, attempts, error) = match status {
            JobStatus::Exact => (
                Some(Rung::Exact),
                vec![Attempt {
                    rung: Rung::Exact,
                    status: AttemptStatus::Completed,
                    degraded: false,
                    wall: Duration::from_micros(1234),
                    degradations: Vec::new(),
                }],
                None,
            ),
            JobStatus::Degraded => (
                Some(Rung::Budgeted { wall_ms: 500 }),
                vec![
                    Attempt {
                        rung: Rung::Exact,
                        status: AttemptStatus::HardTimeout,
                        degraded: false,
                        wall: Duration::from_millis(7),
                        degradations: Vec::new(),
                    },
                    Attempt {
                        rung: Rung::Budgeted { wall_ms: 500 },
                        status: AttemptStatus::Completed,
                        degraded: true,
                        wall: Duration::from_millis(3),
                        degradations: Vec::new(),
                    },
                ],
                None,
            ),
            JobStatus::Failed => (None, Vec::new(), Some("boom: no such rung".to_string())),
            JobStatus::Skipped => {
                return JobOutcome::skipped(name);
            }
        };
        JobOutcome {
            name: name.to_string(),
            status,
            rung,
            attempts,
            wall: Duration::from_micros(4567),
            output: None,
            error,
        }
    }

    fn sample_outcomes() -> Vec<JobOutcome> {
        vec![
            outcome("alpha", JobStatus::Exact),
            outcome("beta", JobStatus::Degraded),
            outcome("gamma", JobStatus::Failed),
            outcome("delta", JobStatus::Skipped),
        ]
    }

    fn write_journal(path: &Path, outcomes: &[JobOutcome]) {
        let mut w = JournalWriter::create(path, 42).unwrap();
        for o in outcomes {
            w.append(&JournalRecord::from_outcome(o)).unwrap();
        }
    }

    #[test]
    fn round_trips_records() {
        let path = tmp("roundtrip");
        let outcomes = sample_outcomes();
        write_journal(&path, &outcomes);
        let rec = recover(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(rec.digest, 42);
        assert!(rec.warnings.is_empty(), "{:?}", rec.warnings);
        assert_eq!(rec.records.len(), outcomes.len());
        for (r, o) in rec.records.iter().zip(&outcomes) {
            assert_eq!(r.name, o.name);
            assert_eq!(r.status, o.status);
            assert_eq!(r.attempts as usize, o.attempts.len());
            assert_eq!(r.json, format!("{}", o.to_json()));
        }
    }

    #[test]
    fn report_matches_batch_report_byte_for_byte() {
        let outcomes = sample_outcomes();
        let wall = Duration::from_micros(987_654);
        let batch = BatchReport {
            jobs: outcomes.clone(),
            wall,
        };
        let journaled = JournaledReport {
            jobs: outcomes.iter().map(JournalRecord::from_outcome).collect(),
            wall,
        };
        assert_eq!(journaled.to_json_text(), format!("{}", batch.to_json()));
        assert_eq!(format!("{journaled}"), format!("{batch}"));
        assert_eq!(journaled.counts(), batch.counts());
        assert_eq!(journaled.status(), batch.status());
    }

    #[test]
    fn tolerates_torn_tail() {
        let path = tmp("torn-tail");
        let outcomes = sample_outcomes();
        write_journal(&path, &outcomes);
        let full = std::fs::read(&path).unwrap();
        // Chop the file mid-way through the last record.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let rec = recover(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(rec.records.len(), outcomes.len() - 1);
        assert!(!rec.warnings.is_empty());
        assert!(rec.find("delta").is_none());
        assert!(rec.find("gamma").is_some());
    }

    #[test]
    fn skips_corrupt_record_and_continues() {
        let path = tmp("corrupt");
        let outcomes = sample_outcomes();
        write_journal(&path, &outcomes);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte inside the first record's payload.
        bytes[HEADER_BYTES + 8 + 2] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let rec = recover(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(rec.find("alpha").is_none(), "corrupt record must be dropped");
        assert!(rec.find("beta").is_some(), "later records must survive");
        assert!(rec.warnings.iter().any(|w| w.message.contains("CRC")));
    }

    #[test]
    fn rejects_bad_header() {
        let rec = recover_bytes(b"NOTAJRNL rest of garbage");
        assert!(rec.records.is_empty());
        assert!(!rec.warnings.is_empty());
    }

    #[test]
    fn dedups_keep_first() {
        let path = tmp("dedup");
        let mut w = JournalWriter::create(&path, 1).unwrap();
        let first = JournalRecord::from_outcome(&outcome("same", JobStatus::Exact));
        w.append(&first).unwrap();
        let dup = JournalRecord::from_outcome(&outcome("same", JobStatus::Failed));
        w.append(&dup).unwrap();
        let rec = recover(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].status, JobStatus::Exact);
        assert!(rec.warnings.iter().any(|w| w.message.contains("duplicate")));
    }

    #[test]
    fn torn_fault_leaves_partial_frame_and_errors() {
        let path = tmp("fault-torn");
        let outcomes = sample_outcomes();
        let mut w = JournalWriter::create(&path, 7).unwrap();
        w.set_fault(Some(JournalFault {
            at_record: 2,
            kind: JournalFaultKind::Torn,
        }));
        w.append(&JournalRecord::from_outcome(&outcomes[0])).unwrap();
        let err = w
            .append(&JournalRecord::from_outcome(&outcomes[1]))
            .unwrap_err();
        assert!(err.to_string().contains("torn@2"));
        drop(w);
        let rec = recover(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].name, "alpha");
        assert!(!rec.warnings.is_empty());
    }

    #[test]
    fn corrupt_fault_writes_bad_crc_and_errors() {
        let path = tmp("fault-corrupt");
        let outcomes = sample_outcomes();
        let mut w = JournalWriter::create(&path, 7).unwrap();
        w.set_fault(Some(JournalFault {
            at_record: 1,
            kind: JournalFaultKind::Corrupt,
        }));
        let err = w
            .append(&JournalRecord::from_outcome(&outcomes[0]))
            .unwrap_err();
        assert!(err.to_string().contains("jcorrupt@1"));
        drop(w);
        let rec = recover(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(rec.records.is_empty());
        assert!(rec.warnings.iter().any(|w| w.message.contains("CRC")));
    }

    #[test]
    fn fault_parse_grammar() {
        assert!(matches!(
            JournalFault::parse("torn@3"),
            Some(Ok(JournalFault {
                at_record: 3,
                kind: JournalFaultKind::Torn
            }))
        ));
        assert!(matches!(
            JournalFault::parse("jcorrupt@1"),
            Some(Ok(JournalFault {
                at_record: 1,
                kind: JournalFaultKind::Corrupt
            }))
        ));
        assert!(JournalFault::parse("torn@0").unwrap().is_err());
        assert!(JournalFault::parse("torn@x").unwrap().is_err());
        assert!(JournalFault::parse("overflow@1").is_none());
        assert!(JournalFault::parse("abort").is_none());
    }

    #[test]
    fn resume_after_fault_counts_from_own_appends() {
        // A writer opened for append with torn@1 breaks its own first
        // append, not the file's first record.
        let path = tmp("fault-resume");
        let outcomes = sample_outcomes();
        write_journal(&path, &outcomes[..2]);
        let mut w = JournalWriter::open_append(&path).unwrap();
        w.set_fault(Some(JournalFault {
            at_record: 1,
            kind: JournalFaultKind::Torn,
        }));
        assert!(w.append(&JournalRecord::from_outcome(&outcomes[2])).is_err());
        drop(w);
        let rec = recover(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(rec.records.len(), 2);
    }

    #[test]
    fn open_append_truncates_a_torn_tail_before_appending() {
        // Records appended after a torn partial frame sit beyond the
        // point where recovery stops scanning, so a resume that appends
        // without truncating writes records no future resume can see.
        let path = tmp("torn-tail-reopen");
        let outcomes = sample_outcomes();
        write_journal(&path, &outcomes[..1]);
        let mut w = JournalWriter::open_append(&path).unwrap();
        w.set_fault(Some(JournalFault {
            at_record: 1,
            kind: JournalFaultKind::Torn,
        }));
        assert!(w.append(&JournalRecord::from_outcome(&outcomes[1])).is_err());
        drop(w);
        let mut w = JournalWriter::open_append(&path).unwrap();
        w.append(&JournalRecord::from_outcome(&outcomes[2])).unwrap();
        drop(w);
        let rec = recover(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let names: Vec<&str> = rec.records.iter().map(|r| r.name.as_str()).collect();
        let want = [
            JournalRecord::from_outcome(&outcomes[0]).name,
            JournalRecord::from_outcome(&outcomes[2]).name,
        ];
        assert_eq!(names, want);
        assert!(
            rec.warnings.is_empty(),
            "torn tail should be gone after reopen: {:?}",
            rec.warnings
        );
    }
}
