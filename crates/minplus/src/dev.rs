//! Pseudo-inverse and horizontal / vertical deviations.
//!
//! The classical Real-Time-Calculus performance bounds are
//!
//! * **delay**: `hdev(α, β) = sup_t inf { d ≥ 0 : α(t) ≤ β(t + d) }` — the
//!   maximal horizontal distance by which the demand curve `α` leads the
//!   service curve `β`;
//! * **backlog**: `vdev(α, β) = sup_t ( α(t) − β(t) )` — the maximal
//!   vertical gap.
//!
//! Both are computed exactly here, including the tail analysis deciding
//! finiteness (a demand rate exceeding the service rate yields
//! [`Ext::Infinite`]).

use crate::curve::{Curve, Tail};
use crate::error::CurveError;
use crate::extended::Ext;
use crate::meter::{BudgetKind, BudgetMeter};
use crate::ops::{ck_add, running_max_diff, try_common_period, TailInfo};
use crate::ratio::Q;
use crate::stream::{CurveStream, Unroll};

impl Curve {
    /// Lower pseudo-inverse: `f⁻¹(w) = inf { t ≥ 0 : f(t) ≥ w }`.
    ///
    /// Returns [`Ext::Infinite`] if the curve never reaches `w`.
    ///
    /// # Examples
    ///
    /// ```
    /// use srtw_minplus::{Curve, Ext, Q, q};
    /// let beta = Curve::rate_latency(Q::int(2), Q::int(3));
    /// assert_eq!(beta.pseudo_inverse(Q::int(4)), Ext::Finite(Q::int(5)));
    /// assert_eq!(beta.pseudo_inverse(Q::ZERO), Ext::Finite(Q::ZERO));
    /// let flat = Curve::constant(Q::ONE);
    /// assert_eq!(flat.pseudo_inverse(Q::int(2)), Ext::Infinite);
    /// ```
    pub fn pseudo_inverse(&self, w: Q) -> Ext {
        if self.eval(Q::ZERO) >= w {
            return Ext::Finite(Q::ZERO);
        }
        // Scan the explicit pieces first.
        if let Some(t) = scan_pieces_for(self, w, 0, self.pieces().len(), Q::ZERO, Q::ZERO) {
            return Ext::Finite(t);
        }
        match self.tail() {
            Tail::Affine => {
                let last = *self.pieces().last().expect("non-empty");
                if last.slope.is_positive() {
                    // Solve value + slope·(t − start) = w.
                    Ext::Finite(last.start + (w - last.value) / last.slope)
                } else {
                    Ext::Infinite
                }
            }
            Tail::Periodic {
                pattern_start,
                period,
                increment,
            } => {
                if increment.is_zero() {
                    // The pattern repeats without growth; the explicit scan
                    // already covered one full period.
                    return Ext::Infinite;
                }
                // Highest value reached within the first pattern instance
                // (left limits included via the wrap point).
                let s = self.pieces()[pattern_start].start;
                let mut pmax = self.pieces()[pattern_start].value;
                for i in pattern_start..self.pieces().len() {
                    let p = self.pieces()[i];
                    let end = self
                        .pieces()
                        .get(i + 1)
                        .map(|n| n.start)
                        .unwrap_or(s + period);
                    pmax = pmax.max(p.eval(end));
                }
                // First period instance k whose lifted pattern can reach w.
                let k = ((w - pmax) / increment).ceil().max(0);
                for kk in k..=k + 1 {
                    let lift = increment * Q::int(kk);
                    let shift = period * Q::int(kk);
                    if let Some(t) = scan_pieces_for(
                        self,
                        w,
                        pattern_start,
                        self.pieces().len(),
                        shift,
                        lift,
                    ) {
                        return Ext::Finite(t);
                    }
                    // Wrap point of instance kk: start of instance kk+1.
                    let wrap_v = self.pieces()[pattern_start].value + increment * Q::int(kk + 1);
                    if wrap_v >= w {
                        return Ext::Finite(s + period * Q::int(kk + 1));
                    }
                }
                unreachable!("periodic pseudo-inverse must land within two instances")
            }
        }
    }

    /// Vertical deviation `sup_t (self(t) − other(t))`, clamped at 0.
    ///
    /// Returns [`Ext::Infinite`] when `self` grows strictly faster than
    /// `other`.
    ///
    /// # Examples
    ///
    /// ```
    /// use srtw_minplus::{Curve, Ext, Q};
    /// let alpha = Curve::staircase(Q::int(4), Q::int(2)); // rate 1/2
    /// let beta = Curve::rate_latency(Q::ONE, Q::int(3));  // rate 1
    /// // Worst backlog at t = 4: demand 4 arrived, only 1 served.
    /// assert_eq!(alpha.vdev(&beta), Ext::Finite(Q::int(3)));
    /// ```
    pub fn vdev(&self, other: &Curve) -> Ext {
        self.try_vdev(other, &BudgetMeter::unlimited())
            .expect("unmetered vdev failed")
    }

    /// Fallible, budgeted [`Curve::vdev`]: surfaces `i128` overflow (e.g.
    /// an lcm of huge coprime periods) and budget exhaustion as errors.
    pub fn try_vdev(&self, other: &Curve, meter: &BudgetMeter) -> Result<Ext, CurveError> {
        let ta = TailInfo::of(self);
        let tb = TailInfo::of(other);
        if ta.rate > tb.rate {
            return Ok(Ext::Infinite);
        }
        let h0 = ta.s.max(tb.s);
        let p = try_common_period(&ta, &tb)?.unwrap_or(Q::ONE);
        if ta.rate == tb.rate {
            // Difference eventually periodic with zero net growth: one
            // aligned period beyond both tails carries the global maximum.
            let (_, m) = running_max_diff(self, other, ck_add(h0, p)?, &[], meter)?;
            Ok(Ext::Finite(m))
        } else {
            // Negative drift: settle once the difference's upper bounding
            // line falls below the running maximum so far.
            let h1 = ck_add(ck_add(h0, p)?, p)?;
            let (_, m1) = running_max_diff(self, other, h1, &[], meter)?;
            let (aup, ar) = ta.upper_line();
            let (blo, br) = tb.lower_line();
            let t0 = ((aup - blo - m1) / (br - ar)).max(h0) + Q::ONE;
            let (_, m) = running_max_diff(self, other, t0, &[], meter)?;
            Ok(Ext::Finite(m))
        }
    }

    /// Horizontal deviation
    /// `sup_t inf { d ≥ 0 : self(t) ≤ other(t + d) }` — the classical
    /// worst-case **delay bound** of demand `self` served by `other`.
    ///
    /// Returns [`Ext::Infinite`] when the demand rate exceeds the service
    /// rate, or when `other` saturates below `self`'s reach.
    ///
    /// # Examples
    ///
    /// ```
    /// use srtw_minplus::{Curve, Ext, Q};
    /// let alpha = Curve::staircase(Q::int(4), Q::int(2)); // 2 units / 4 time
    /// let beta = Curve::rate_latency(Q::ONE, Q::int(3));
    /// // Burst of 2 at t=0 finishes at 3 + 2 = 5 ⇒ delay 5.
    /// assert_eq!(alpha.hdev(&beta), Ext::Finite(Q::int(5)));
    /// ```
    pub fn hdev(&self, other: &Curve) -> Ext {
        self.try_hdev(other, &BudgetMeter::unlimited())
            .expect("unmetered hdev failed")
    }

    /// Fallible, budgeted [`Curve::hdev`]: surfaces `i128` overflow (the
    /// check horizon is an lcm of the operands' periods, which huge coprime
    /// periods push past `i128`) and budget exhaustion as errors instead of
    /// aborting or materializing an astronomically long window.
    pub fn try_hdev(&self, other: &Curve, meter: &BudgetMeter) -> Result<Ext, CurveError> {
        let ta = TailInfo::of(self);
        let tb = TailInfo::of(other);
        if ta.rate > tb.rate {
            return Ok(Ext::Infinite);
        }
        if ta.rate == tb.rate && ta.rate.is_zero() {
            // Both saturate; compare the limits.
            let la = ta.base + ta.dev_max; // actually suprema of bounded curves
            let lb_sup = tb.base + tb.dev_max;
            if la > lb_sup {
                // self's eventual level may exceed other's: decide exactly
                // via pseudo-inverse of the supremum demand.
                let h = crate::curve::try_common_check_horizon(self, other)?;
                let sup_demand = self.eval(h).max(self.eval_left(h));
                if other.pseudo_inverse(sup_demand).is_infinite() {
                    return Ok(Ext::Infinite);
                }
            }
        }

        // Horizon beyond which the deviation cannot attain a new supremum.
        let h = if ta.rate == tb.rate {
            // Deviation eventually periodic: one aligned lcm window beyond
            // both tails repeats forever.
            crate::curve::try_common_check_horizon(self, other)?
        } else {
            // Service strictly faster: beyond the settle point d(t) ≤ d at
            // the settle point (the gap only widens). Settle where the
            // demand's upper line is below the service's lower line.
            let (aup, ar) = ta.upper_line();
            let (blo, br) = tb.lower_line();
            let t0 = ((aup - blo) / (br - ar)).max(ta.s).max(tb.s);
            t0 + Q::ONE
        };

        // Candidate times: demand breakpoints, plus times where the demand
        // crosses a service breakpoint's value (there the service
        // pseudo-inverse kinks). Both scans stream the unrolled pieces
        // instead of materializing them (same tick sequence).
        let mut cands: Vec<Q> = Vec::new();
        let mut demand_stream = Unroll::new(self, h, meter);
        while let Some(ev) = demand_stream.next_event() {
            let p = ev?;
            if p.start <= h {
                cands.push(p.start);
            }
        }
        let demand_max = self.eval(h);
        // Stream service breakpoints up to the service time that covers the
        // maximal demand, with one event of lookahead for the left limits.
        let bh = match other.pseudo_inverse(demand_max) {
            Ext::Finite(t) => t + Q::ONE,
            Ext::Infinite => return Ok(Ext::Infinite),
        };
        let mut service_stream = Unroll::new(other, bh, meter);
        let mut pending = match service_stream.next_event() {
            Some(ev) => Some(ev?),
            None => None,
        };
        while let Some(p) = pending {
            let next = match service_stream.next_event() {
                Some(ev) => Some(ev?),
                None => None,
            };
            // Both the piece's start value and its left limit at the next
            // breakpoint are levels where other's pseudo-inverse kinks.
            let levels = [Some(p.value), next.map(|n| p.eval(n.start))];
            for v in levels.into_iter().flatten() {
                if let Ext::Finite(t) = self.pseudo_inverse(v) {
                    if t <= h {
                        cands.push(t);
                    }
                }
            }
            pending = next;
        }
        cands.push(Q::ZERO);
        cands.push(h);
        cands.retain(|t| !t.is_negative());
        cands.sort();
        cands.dedup();

        // d(t) = other⁻¹(self(t)) − t is affine on the open interval
        // between refined candidates (the refinement keeps self(t) within a
        // single affine stretch of other's pseudo-inverse). Evaluate d at
        // every candidate, and recover the interval's one-sided limits by
        // extrapolating from two interior samples — d may jump *up* right
        // after a candidate (e.g. when the demand leaves a service
        // plateau), so the right limit at t1 matters as much as the left
        // limit at t2. Clamping happens only at the very end.
        let d_at = |t: Q| -> Ext {
            match other.pseudo_inverse(self.eval(t)) {
                Ext::Finite(x) => Ext::Finite(x - t),
                Ext::Infinite => Ext::Infinite,
            }
        };
        let third = Q::new(1, 3);
        let mut best = Q::ZERO;
        for (i, &t1) in cands.iter().enumerate() {
            if !meter.tick_segment() {
                let kind = meter.tripped().unwrap_or(BudgetKind::Segments);
                return Err(CurveError::Budget(kind));
            }
            match d_at(t1) {
                Ext::Finite(v) => best = best.max(v),
                Ext::Infinite => return Ok(Ext::Infinite),
            }
            if let Some(&t2) = cands.get(i + 1) {
                let dt = t2 - t1;
                let m1 = t1 + dt * third;
                let m2 = t1 + dt * third * Q::TWO;
                match (d_at(m1), d_at(m2)) {
                    (Ext::Finite(a), Ext::Finite(b)) => {
                        let slope = (b - a) / (m2 - m1);
                        let at_t1 = a - slope * (m1 - t1); // right limit at t1
                        let at_t2 = a + slope * (t2 - m1); // left limit at t2
                        best = best.max(a).max(b).max(at_t1).max(at_t2);
                    }
                    _ => return Ok(Ext::Infinite),
                }
            }
        }
        Ok(Ext::Finite(best.clamp_nonneg()))
    }
}

/// Scans pieces `[from, to)` of `c`, each shifted right by `shift` and up by
/// `lift`, for the first time the curve reaches `w`. Returns the exact
/// crossing time if found.
fn scan_pieces_for(c: &Curve, w: Q, from: usize, to: usize, shift: Q, lift: Q) -> Option<Q> {
    let pieces = c.pieces();
    for i in from..to {
        let p = pieces[i];
        let start = p.start + shift;
        let value = p.value + lift;
        if value >= w {
            return Some(start);
        }
        let end = match pieces.get(i + 1) {
            Some(n) => Some(n.start + shift),
            None => match c.tail() {
                Tail::Affine => None,
                Tail::Periodic {
                    pattern_start,
                    period,
                    ..
                } => Some(pieces[pattern_start].start + period + shift),
            },
        };
        if p.slope.is_positive() {
            let t = start + (w - value) / p.slope;
            match end {
                Some(e) if t >= e => {}
                _ => return Some(t),
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::q;

    /// Brute-force pseudo-inverse on a fine grid.
    fn brute_inverse(f: &Curve, w: Q, h: Q, den: i128) -> Option<Q> {
        let steps = (h * Q::int(den)).floor();
        for i in 0..=steps {
            let t = q(i, den);
            if f.eval(t) >= w {
                return Some(t);
            }
        }
        None
    }

    #[test]
    fn pseudo_inverse_rate_latency() {
        let b = Curve::rate_latency(Q::int(2), Q::int(3));
        assert_eq!(b.pseudo_inverse(Q::ZERO), Ext::Finite(Q::ZERO));
        assert_eq!(b.pseudo_inverse(Q::ONE), Ext::Finite(q(7, 2)));
        assert_eq!(b.pseudo_inverse(Q::int(10)), Ext::Finite(Q::int(8)));
    }

    #[test]
    fn pseudo_inverse_staircase() {
        let s = Curve::staircase(Q::int(5), Q::int(2));
        // Reaches 2 at t=0, 4 at t=5, 6 at t=10, ...
        assert_eq!(s.pseudo_inverse(Q::ONE), Ext::Finite(Q::ZERO));
        assert_eq!(s.pseudo_inverse(Q::int(2)), Ext::Finite(Q::ZERO));
        assert_eq!(s.pseudo_inverse(Q::int(3)), Ext::Finite(Q::int(5)));
        assert_eq!(s.pseudo_inverse(Q::int(4)), Ext::Finite(Q::int(5)));
        assert_eq!(s.pseudo_inverse(Q::int(21)), Ext::Finite(Q::int(50)));
        // Cross-check against brute force.
        for wnum in 0..60 {
            let w = q(wnum, 2);
            let got = s.pseudo_inverse(w).finite();
            let brute = brute_inverse(&s, w, Q::int(200), 2);
            assert_eq!(got, brute, "at w = {w}");
        }
    }

    #[test]
    fn pseudo_inverse_flat_tail() {
        let c = Curve::staircase_from_points(&[(Q::ZERO, Q::ZERO), (Q::int(2), Q::int(5))])
            .unwrap();
        assert_eq!(c.pseudo_inverse(Q::int(5)), Ext::Finite(Q::int(2)));
        assert_eq!(c.pseudo_inverse(q(11, 2)), Ext::Infinite);
        // Zero-increment periodic tail.
        let z = Curve::new(
            vec![crate::curve::Piece::new(Q::ZERO, Q::ONE, Q::ZERO)],
            Tail::Periodic {
                pattern_start: 0,
                period: Q::int(3),
                increment: Q::ZERO,
            },
        )
        .unwrap();
        assert_eq!(z.pseudo_inverse(Q::int(2)), Ext::Infinite);
    }

    #[test]
    fn pseudo_inverse_sloped_periodic() {
        // Sawtooth-ish: rises 1 over [0,1), flat over [1,3), +1 per period.
        let c = Curve::new(
            vec![
                crate::curve::Piece::new(Q::ZERO, Q::ZERO, Q::ONE),
                crate::curve::Piece::new(Q::ONE, Q::ONE, Q::ZERO),
            ],
            Tail::Periodic {
                pattern_start: 0,
                period: Q::int(3),
                increment: Q::ONE,
            },
        )
        .unwrap();
        assert_eq!(c.pseudo_inverse(q(1, 2)), Ext::Finite(q(1, 2)));
        assert_eq!(c.pseudo_inverse(q(3, 2)), Ext::Finite(q(7, 2)));
        assert_eq!(c.pseudo_inverse(Q::int(10)), Ext::Finite(Q::int(28)));
        for wnum in 0..40 {
            let w = q(wnum, 4);
            let got = c.pseudo_inverse(w).finite();
            let brute = brute_inverse(&c, w, Q::int(100), 4);
            assert_eq!(got, brute, "at w = {w}");
        }
    }

    /// Brute-force horizontal deviation.
    fn brute_hdev(f: &Curve, g: &Curve, h: Q, den: i128) -> Q {
        let steps = (h * Q::int(den)).floor();
        let mut best = Q::ZERO;
        for i in 0..=steps {
            let t = q(i, den);
            let w = f.eval(t);
            if let Ext::Finite(x) = g.pseudo_inverse(w) {
                best = best.max((x - t).clamp_nonneg());
            }
        }
        best
    }

    #[test]
    fn hdev_staircase_vs_rate_latency() {
        let alpha = Curve::staircase(Q::int(4), Q::int(2));
        let beta = Curve::rate_latency(Q::ONE, Q::int(3));
        assert_eq!(alpha.hdev(&beta), Ext::Finite(Q::int(5)));
        assert_eq!(
            alpha.hdev(&beta).unwrap_finite(),
            brute_hdev(&alpha, &beta, Q::int(100), 4)
        );
    }

    #[test]
    fn hdev_equal_rates() {
        // Periodic demand exactly served by matching-rate fluid service.
        let alpha = Curve::staircase(Q::int(4), Q::int(2));
        let beta = Curve::affine(Q::ZERO, q(1, 2));
        let d = alpha.hdev(&beta);
        assert_eq!(d.unwrap_finite(), brute_hdev(&alpha, &beta, Q::int(120), 4));
        assert_eq!(d, Ext::Finite(Q::int(4))); // burst of 2 at rate 1/2
    }

    #[test]
    fn hdev_infinite_when_demand_faster() {
        let alpha = Curve::affine(Q::ZERO, Q::int(2));
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        assert_eq!(alpha.hdev(&beta), Ext::Infinite);
    }

    #[test]
    fn hdev_infinite_when_service_saturates() {
        let alpha = Curve::staircase(Q::int(4), Q::ONE);
        let beta = Curve::constant(Q::int(3));
        assert_eq!(alpha.hdev(&beta), Ext::Infinite);
        // But a bounded demand below the saturation level is fine.
        let alpha2 = Curve::staircase_from_points(&[(Q::ZERO, Q::ZERO), (Q::int(2), Q::int(3))])
            .unwrap();
        assert_eq!(alpha2.hdev(&beta), Ext::Finite(Q::ZERO));
    }

    #[test]
    fn hdev_various_pairs_match_brute_force() {
        let pairs = vec![
            (
                Curve::staircase(Q::int(3), Q::int(2)),
                Curve::rate_latency(Q::ONE, Q::int(2)),
            ),
            (
                Curve::affine(Q::int(3), q(1, 3)),
                Curve::rate_latency(q(1, 2), Q::int(1)),
            ),
            (
                Curve::staircase(Q::int(5), Q::int(3)).shift_up(Q::ONE),
                Curve::affine(Q::ZERO, Q::ONE),
            ),
            (
                Curve::staircase(Q::int(6), Q::int(2)),
                Curve::staircase_lower(Q::int(3), Q::int(2)),
            ),
        ];
        for (alpha, beta) in pairs {
            let exact = alpha.hdev(&beta).unwrap_finite();
            let brute = brute_hdev(&alpha, &beta, Q::int(150), 6);
            assert_eq!(exact, brute, "hdev mismatch for {alpha:?} vs {beta:?}");
        }
    }

    /// Brute-force vertical deviation (left limits included: the supremum
    /// may only be approached from the left at downward jumps of `f − g`).
    fn brute_vdev(f: &Curve, g: &Curve, h: Q, den: i128) -> Q {
        let steps = (h * Q::int(den)).floor();
        let mut best = Q::ZERO;
        for i in 0..=steps {
            let t = q(i, den);
            best = best.max(f.eval(t) - g.eval(t));
            best = best.max(f.eval_left(t) - g.eval_left(t));
        }
        best
    }

    #[test]
    fn vdev_matches_brute_force() {
        let alpha = Curve::staircase(Q::int(4), Q::int(2));
        let beta = Curve::rate_latency(Q::ONE, Q::int(3));
        assert_eq!(alpha.vdev(&beta), Ext::Finite(Q::int(3)));
        assert_eq!(
            alpha.vdev(&beta).unwrap_finite(),
            brute_vdev(&alpha, &beta, Q::int(100), 4)
        );
        let a2 = Curve::staircase(Q::int(3), Q::int(2));
        let b2 = Curve::staircase_lower(Q::int(3), Q::int(2));
        assert_eq!(
            a2.vdev(&b2).unwrap_finite(),
            brute_vdev(&a2, &b2, Q::int(100), 4)
        );
    }

    #[test]
    fn vdev_infinite_on_overload() {
        let alpha = Curve::affine(Q::ZERO, Q::int(2));
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        assert_eq!(alpha.vdev(&beta), Ext::Infinite);
    }

    #[test]
    fn try_hdev_surfaces_lcm_overflow() {
        // Equal rates with huge coprime periods: the common check horizon
        // is their lcm, which overflows i128. The fallible entry point
        // reports it; the panicking one used to abort the process.
        let p1 = Q::int(1i128 << 88);
        let p2 = Q::int((1i128 << 88) - 1);
        let alpha = Curve::staircase(p1, p1);
        let beta = Curve::staircase_lower(p2, p2);
        let got = alpha.try_hdev(&beta, &BudgetMeter::unlimited());
        assert_eq!(
            got,
            Err(CurveError::Arithmetic(crate::error::ArithmeticError::Overflow))
        );
        let got_v = alpha.try_vdev(&beta, &BudgetMeter::unlimited());
        assert_eq!(
            got_v,
            Err(CurveError::Arithmetic(crate::error::ArithmeticError::Overflow))
        );
    }

    #[test]
    fn try_hdev_trips_budget_on_long_horizon() {
        use crate::meter::Budget;
        // Coprime-ish periods force a long lcm window; a tight segment cap
        // stops the scan early instead of materializing millions of pieces.
        let p = Q::int(999_983); // prime
        let alpha = Curve::staircase(Q::ONE, Q::ONE);
        let beta = Curve::staircase_lower(p, p);
        let meter = BudgetMeter::new(&Budget::default().with_max_segments(100));
        let got = alpha.try_hdev(&beta, &meter);
        assert_eq!(got, Err(CurveError::Budget(BudgetKind::Segments)));
        // The unmetered result agrees between try_ and classic entry points
        // on a benign pair.
        let a2 = Curve::staircase(Q::int(4), Q::int(2));
        let b2 = Curve::rate_latency(Q::ONE, Q::int(3));
        assert_eq!(
            a2.try_hdev(&b2, &BudgetMeter::unlimited()).unwrap(),
            a2.hdev(&b2)
        );
        assert_eq!(
            a2.try_vdev(&b2, &BudgetMeter::unlimited()).unwrap(),
            a2.vdev(&b2)
        );
    }
}
