//! Property-based tests for the (min,+) curve algebra.
//!
//! Random curves are generated from a small constructor grammar (affine,
//! rate-latency, staircases, shifts, scales) and the algebraic laws of the
//! operators are checked against dense-grid pointwise evaluation.
//!
//! Runs on the in-house seeded harness ([`srtw_detrand::prop`]); set
//! `SRTW_PROP_CASES` / `SRTW_PROP_SEED` / `SRTW_PROP_REPLAY` to control it.

use srtw_detrand::prop::forall;
use srtw_detrand::Rng;
use srtw_minplus::{Curve, Ext, Piece, Q, Tail};

/// A small positive rational with numerator/denominator bounded for speed.
fn small_pos_q(rng: &mut Rng) -> Q {
    Q::new(rng.random_range(1i128..=12), rng.random_range(1i128..=4))
}

/// A small non-negative rational.
fn small_q(rng: &mut Rng) -> Q {
    Q::new(rng.random_range(0i128..=12), rng.random_range(1i128..=4))
}

/// Random curve leaf from the constructor grammar.
fn leaf(rng: &mut Rng) -> Curve {
    match rng.random_range(0u32..5) {
        0 => Curve::constant(small_q(rng)),
        1 => {
            let (b, r) = (small_q(rng), small_q(rng));
            Curve::affine(b, r)
        }
        2 => {
            let (r, t) = (small_pos_q(rng), small_q(rng));
            Curve::rate_latency(r, t)
        }
        3 => {
            let (p, h) = (small_pos_q(rng), small_pos_q(rng));
            Curve::staircase(p, h)
        }
        _ => {
            let (p, h) = (small_pos_q(rng), small_pos_q(rng));
            Curve::staircase_lower(p, h)
        }
    }
}

/// Random curve: leaves combined through the unary/binary operators up to
/// `depth` levels of nesting.
fn curve_depth(rng: &mut Rng, depth: u32) -> Curve {
    if depth == 0 || rng.random_range(0u32..3) == 0 {
        return leaf(rng);
    }
    match rng.random_range(0u32..5) {
        0 => {
            let c = curve_depth(rng, depth - 1);
            let d = small_q(rng);
            c.shift_up(d)
        }
        1 => {
            let c = curve_depth(rng, depth - 1);
            let d = small_q(rng);
            c.shift_right(d)
        }
        2 => {
            let c = curve_depth(rng, depth - 1);
            let k = small_q(rng);
            c.scale(k)
        }
        3 => {
            let a = curve_depth(rng, depth - 1);
            let b = curve_depth(rng, depth - 1);
            a.pointwise_min(&b)
        }
        _ => {
            let a = curve_depth(rng, depth - 1);
            let b = curve_depth(rng, depth - 1);
            a.pointwise_add(&b)
        }
    }
}

/// Random curve; the harness `size` knob controls the nesting depth so
/// shrinking produces structurally simpler curves.
fn curve(rng: &mut Rng, size: u32) -> Curve {
    curve_depth(rng, (size / 24).min(2))
}

/// Sample grid reaching well past typical tail starts.
fn grid() -> Vec<Q> {
    (0..120).map(|i| Q::new(i, 3)).collect()
}

#[test]
fn q_field_laws() {
    forall(
        "q_field_laws",
        |rng, _| {
            (
                rng.random_range(-1000i128..1000),
                rng.random_range(1i128..60),
                rng.random_range(-1000i128..1000),
                rng.random_range(1i128..60),
            )
        },
        |&(a, b, c, d)| {
            let x = Q::new(a, b);
            let y = Q::new(c, d);
            assert_eq!(x + y, y + x);
            assert_eq!(x * y, y * x);
            assert_eq!(x - y, -(y - x));
            assert_eq!((x + y) - y, x);
            if !y.is_zero() {
                assert_eq!((x / y) * y, x);
            }
            assert_eq!(x * (y + Q::ONE), x * y + x);
        },
    );
}

#[test]
fn q_ordering_consistent_with_f64() {
    forall(
        "q_ordering_consistent_with_f64",
        |rng, _| {
            (
                rng.random_range(-500i128..500),
                rng.random_range(1i128..40),
                rng.random_range(-500i128..500),
                rng.random_range(1i128..40),
            )
        },
        |&(a, b, c, d)| {
            let x = Q::new(a, b);
            let y = Q::new(c, d);
            let fx = x.to_f64();
            let fy = y.to_f64();
            if (fx - fy).abs() > 1e-9 {
                assert_eq!(x < y, fx < fy);
            }
            assert!(Q::int(x.floor()) <= x);
            assert!(Q::int(x.ceil()) >= x);
        },
    );
}

fn check_monotone(c: &Curve) {
    let ts = grid();
    for w in ts.windows(2) {
        assert!(
            c.eval(w[0]) <= c.eval(w[1]),
            "not monotone at {} -> {}",
            w[0],
            w[1]
        );
        assert!(c.eval_left(w[1]) <= c.eval(w[1]));
    }
}

#[test]
fn curves_are_monotone() {
    forall("curves_are_monotone", curve, check_monotone);
}

fn check_pointwise_ops_match_eval(a: &Curve, b: &Curve) {
    let mn = a.pointwise_min(b);
    let mx = a.pointwise_max(b);
    let ad = a.pointwise_add(b);
    for t in grid() {
        let (va, vb) = (a.eval(t), b.eval(t));
        assert_eq!(mn.eval(t), va.min(vb), "min at {t}");
        assert_eq!(mx.eval(t), va.max(vb), "max at {t}");
        assert_eq!(ad.eval(t), va + vb, "add at {t}");
    }
}

#[test]
fn pointwise_ops_match_eval() {
    forall(
        "pointwise_ops_match_eval",
        |rng, size| (curve(rng, size), curve(rng, size)),
        |(a, b)| check_pointwise_ops_match_eval(a, b),
    );
}

#[test]
fn pointwise_ops_algebra() {
    forall(
        "pointwise_ops_algebra",
        |rng, size| (curve(rng, size), curve(rng, size), curve(rng, size)),
        |(a, b, c)| {
            // Commutativity and associativity, checked on the grid.
            let ts = grid();
            let ab = a.pointwise_min(b);
            let ba = b.pointwise_min(a);
            let abc1 = ab.pointwise_min(c);
            let abc2 = a.pointwise_min(&b.pointwise_min(c));
            for &t in &ts {
                assert_eq!(ab.eval(t), ba.eval(t));
                assert_eq!(abc1.eval(t), abc2.eval(t));
            }
            // Distribution: add over min — min(a,b)+c == min(a+c, b+c).
            let lhs = ab.pointwise_add(c);
            let rhs = a.pointwise_add(c).pointwise_min(&b.pointwise_add(c));
            for &t in &ts {
                assert_eq!(lhs.eval(t), rhs.eval(t));
            }
        },
    );
}

fn check_conv_bounds_and_commutes(a: &Curve, b: &Curve) {
    let h = Q::int(25);
    let ab = a.conv_upto(b, h);
    let ba = b.conv_upto(a, h);
    for t in grid() {
        if t > h {
            break;
        }
        // Commutativity.
        assert_eq!(ab.eval(t), ba.eval(t), "conv commutativity at {t}");
        // f ⊗ g ≤ f(t) + g(0) and ≤ f(0) + g(t).
        let ub = (a.eval(t) + b.eval(Q::ZERO)).min(a.eval(Q::ZERO) + b.eval(t));
        assert!(ab.eval(t) <= ub, "conv upper bound at {t}");
        // Grid lower-bound check: conv ≤ every split, so every split
        // must be ≥ the computed value.
        for i in 0..=12 {
            let s = t * Q::new(i, 12);
            assert!(
                ab.eval(t) <= a.eval(s) + b.eval(t - s),
                "conv exceeds split at t={t} s={s}"
            );
        }
    }
}

#[test]
fn conv_bounds_and_commutes() {
    forall(
        "conv_bounds_and_commutes",
        |rng, size| (curve(rng, size), curve(rng, size)),
        |(a, b)| check_conv_bounds_and_commutes(a, b),
    );
}

fn check_conv_monotone_in_horizon(a: &Curve, b: &Curve) {
    // Exactness on the prefix: enlarging the horizon must not change
    // values below the smaller horizon.
    let c1 = a.conv_upto(b, Q::int(12));
    let c2 = a.conv_upto(b, Q::int(24));
    for t in grid() {
        if t > Q::int(12) {
            break;
        }
        assert_eq!(c1.eval(t), c2.eval(t), "horizon instability at {t}");
    }
}

#[test]
fn conv_monotone_in_horizon() {
    forall(
        "conv_monotone_in_horizon",
        |rng, size| (curve(rng, size), curve(rng, size)),
        |(a, b)| check_conv_monotone_in_horizon(a, b),
    );
}

#[test]
fn pseudo_inverse_galois() {
    forall(
        "pseudo_inverse_galois",
        |rng, size| {
            (
                curve(rng, size),
                Q::new(rng.random_range(0i128..40), rng.random_range(1i128..4)),
            )
        },
        |(c, w)| {
            let w = *w;
            match c.pseudo_inverse(w) {
                Ext::Finite(t) => {
                    // f(t) ≥ w at the inverse point...
                    assert!(c.eval(t) >= w, "f({t}) = {} < {w}", c.eval(t));
                    // ...and nothing earlier reaches w (checked on a grid).
                    for i in 0..24 {
                        let s = t * Q::new(i, 24);
                        assert!(
                            c.eval(s) < w
                                || s == t
                                || c.eval(s) == c.eval(t) && c.eval(t) == w,
                            "f({s}) = {} already ≥ {w} before inverse {t}",
                            c.eval(s)
                        );
                    }
                }
                Ext::Infinite => {
                    // The curve must never reach w on a long prefix and have
                    // non-increasing reachability (rate sanity).
                    assert!(c.eval(Q::int(500)) < w);
                }
            }
        },
    );
}

fn check_hdev_vdev_sound_vs_grid(a: &Curve, b: &Curve) {
    // Any grid-sampled deviation is a lower bound on the exact one.
    let hd = a.hdev(b);
    let vd = a.vdev(b);
    for t in grid() {
        let diff = a.eval(t) - b.eval(t);
        match vd {
            Ext::Finite(v) => assert!(diff <= v, "vdev violated at {t}"),
            Ext::Infinite => {}
        }
        match hd {
            Ext::Finite(d) => {
                // Demand at t must be served by t + d.
                assert!(
                    a.eval(t) <= b.eval(t + d),
                    "hdev violated at {t}: {} > {}",
                    a.eval(t),
                    b.eval(t + d)
                );
            }
            Ext::Infinite => {}
        }
    }
}

#[test]
fn hdev_vdev_sound_vs_grid() {
    forall(
        "hdev_vdev_sound_vs_grid",
        |rng, size| (curve(rng, size), curve(rng, size)),
        |(a, b)| check_hdev_vdev_sound_vs_grid(a, b),
    );
}

fn check_sub_clamped_monotone_is_sound(a: &Curve, b: &Curve) {
    let d = a.sub_clamped_monotone(b);
    let ts = grid();
    for w in ts.windows(2) {
        assert!(d.eval(w[0]) <= d.eval(w[1]), "not monotone");
    }
    for &t in &ts {
        // d(t) ≥ (a(t) − b(t))⁺ and d is the smallest such running max
        // on the grid.
        assert!(d.eval(t) >= (a.eval(t) - b.eval(t)).clamp_nonneg());
    }
}

#[test]
fn sub_clamped_monotone_is_sound() {
    forall(
        "sub_clamped_monotone_is_sound",
        |rng, size| (curve(rng, size), curve(rng, size)),
        |(a, b)| check_sub_clamped_monotone_is_sound(a, b),
    );
}

fn check_dominated_by_partial_order(a: &Curve, b: &Curve) {
    if a.dominated_by(b) {
        for t in grid() {
            assert!(a.eval(t) <= b.eval(t), "domination violated at {t}");
        }
    }
    assert!(a.dominated_by(a));
}

#[test]
fn dominated_by_is_a_partial_order_on_samples() {
    forall(
        "dominated_by_is_a_partial_order_on_samples",
        |rng, size| (curve(rng, size), curve(rng, size)),
        |(a, b)| check_dominated_by_partial_order(a, b),
    );
}

// ---------------------------------------------------------------------------
// Named regressions: curve pairs that historical fuzzing shrank to. Each is
// reconstructed exactly and run through every two-curve property above.
// ---------------------------------------------------------------------------

/// Runs every two-curve property on the pair, both orders.
fn check_pair_all_properties(a: &Curve, b: &Curve) {
    check_monotone(a);
    check_monotone(b);
    for (x, y) in [(a, b), (b, a)] {
        check_pointwise_ops_match_eval(x, y);
        check_conv_bounds_and_commutes(x, y);
        check_conv_monotone_in_horizon(x, y);
        check_hdev_vdev_sound_vs_grid(x, y);
        check_sub_clamped_monotone_is_sound(x, y);
        check_dominated_by_partial_order(x, y);
    }
}

/// Historical shrink: two periodic-tail staircases whose patterns start at
/// different piece indices (periods 2 and 3) once disagreed under ⊗.
#[test]
fn regression_conv_offset_periodic_tails() {
    let a = Curve::new(
        vec![Piece::new(Q::ZERO, Q::ONE, Q::ZERO)],
        Tail::Periodic {
            pattern_start: 0,
            period: Q::int(2),
            increment: Q::ONE,
        },
    )
    .unwrap();
    let b = Curve::new(
        vec![
            Piece::new(Q::ZERO, Q::ONE, Q::ZERO),
            Piece::new(Q::ONE, Q::ONE, Q::ZERO),
        ],
        Tail::Periodic {
            pattern_start: 1,
            period: Q::int(3),
            increment: Q::ONE,
        },
    )
    .unwrap();
    check_pair_all_properties(&a, &b);
}

/// Historical shrink: a pure affine ramp against a flat-footed periodic
/// staircase (value 0 at the origin, increment 2 per unit period).
#[test]
fn regression_conv_affine_vs_flat_staircase() {
    let a = Curve::new(vec![Piece::new(Q::ZERO, Q::ZERO, Q::ONE)], Tail::Affine).unwrap();
    let b = Curve::new(
        vec![Piece::new(Q::ZERO, Q::ZERO, Q::ZERO)],
        Tail::Periodic {
            pattern_start: 0,
            period: Q::ONE,
            increment: Q::int(2),
        },
    )
    .unwrap();
    check_pair_all_properties(&a, &b);
}
