//! Fixed-priority analysis: leftover service per priority level.
//!
//! Under preemptive fixed-priority scheduling (priority = position in the
//! task slice, index 0 highest), task `i` is guaranteed at least the
//! *leftover* service `β_i = [β − Σ_{j<i} rbf_j]⁺↑` — the non-decreasing
//! non-negative closure of the full service minus all higher-priority
//! demand. Each task is then analysed structurally on its own leftover
//! curve, retaining per-job-type attribution at every priority level.

use crate::analysis::{structural_delay_with, AnalysisConfig};
use crate::busy::busy_window;
use crate::error::AnalysisError;
use crate::report::DelayAnalysis;
use srtw_minplus::{BudgetMeter, Curve, Pipe, Q};
use srtw_workload::{DrtTask, Rbf};

/// Structural per-job-type bounds for each task under preemptive
/// fixed-priority scheduling (index 0 = highest priority).
///
/// # Examples
///
/// ```
/// use srtw_core::fixed_priority_structural;
/// use srtw_minplus::{Curve, Q};
/// use srtw_workload::DrtTaskBuilder;
///
/// let mk = |name: &str, wcet: i128, sep: i128| {
///     let mut b = DrtTaskBuilder::new(name);
///     let v = b.vertex("v", Q::int(wcet));
///     b.edge(v, v, Q::int(sep));
///     b.build().unwrap()
/// };
/// let hi = mk("hi", 1, 4);
/// let lo = mk("lo", 2, 10);
/// let beta = Curve::affine(Q::ZERO, Q::ONE);
///
/// let per = fixed_priority_structural(&[hi, lo], &beta).unwrap();
/// // The high-priority task is oblivious to the low one…
/// assert_eq!(per[0].stream_bound, Q::ONE);
/// // …while the low one pays for preemption.
/// assert!(per[1].stream_bound > Q::int(2));
/// ```
pub fn fixed_priority_structural(
    tasks: &[DrtTask],
    beta: &Curve,
) -> Result<Vec<DelayAnalysis>, AnalysisError> {
    fixed_priority_structural_with(tasks, beta, &AnalysisConfig::default())
}

/// [`fixed_priority_structural`] with an explicit analysis configuration.
pub fn fixed_priority_structural_with(
    tasks: &[DrtTask],
    beta: &Curve,
    cfg: &AnalysisConfig,
) -> Result<Vec<DelayAnalysis>, AnalysisError> {
    // Joint busy window: bounds every priority level's busy window (the
    // leftover service of level i at the joint bound L still covers the
    // level's own demand: β_i(L) ≥ β(L) − Σ_{j<i} rbf_j(L) ≥ rbf_i(L)).
    let bw = busy_window(tasks, beta)?;
    let horizon = cfg.horizon_override.unwrap_or(bw.bound);
    // Arrival curves must be exact well past the horizon so the leftover
    // closure is exact wherever the analysis evaluates it.
    let generous = horizon + horizon + Q::ONE;
    let alphas: Vec<Curve> = tasks
        .iter()
        .map(|t| Rbf::compute(t, generous).curve())
        .collect();

    let mut out = Vec::with_capacity(tasks.len());
    // The leftover-service chain β → [β − rbf₀]⁺↑ → [… − rbf₁]⁺↑ → … runs
    // as one fused pipeline: each level's analysis taps the current curve,
    // each subtraction is a stage without an intermediate validation scan.
    let meter = BudgetMeter::unlimited();
    let mut current = Pipe::new(beta.clone(), &meter);
    for (task, alpha) in tasks.iter().zip(alphas.iter()) {
        // Pin the horizon: the level's own busy-window estimate against
        // the (truncation-optimistic beyond the joint horizon) leftover
        // curve is not trusted; the joint bound is sound for every level
        // and the leftover curve is exact on [0, 2·horizon].
        let level_cfg = AnalysisConfig {
            horizon_override: Some(horizon),
            ..cfg.clone()
        };
        out.push(structural_delay_with(task, current.current(), &level_cfg)?);
        current = current
            .sub_clamped(alpha)
            .expect("unmetered leftover-service subtraction cannot trip");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::structural_delay;
    use srtw_minplus::q;
    use srtw_workload::DrtTaskBuilder;

    fn looped(name: &str, wcet: i128, sep: i128) -> DrtTask {
        let mut b = DrtTaskBuilder::new(name);
        let v = b.vertex("v", Q::int(wcet));
        b.edge(v, v, Q::int(sep));
        b.build().unwrap()
    }

    #[test]
    fn highest_priority_sees_full_server() {
        let hi = looped("hi", 1, 4);
        let lo = looped("lo", 2, 10);
        let beta = Curve::rate_latency(Q::ONE, Q::int(2));
        let per = fixed_priority_structural(&[hi.clone(), lo], &beta).unwrap();
        let direct = structural_delay(&hi, &beta).unwrap();
        assert_eq!(per[0].stream_bound, direct.stream_bound);
    }

    #[test]
    fn lower_priorities_pay_interference() {
        let hi = looped("hi", 2, 5);
        let mid = looped("mid", 1, 7);
        let lo = looped("lo", 1, 11);
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        let per = fixed_priority_structural(&[hi.clone(), mid.clone(), lo.clone()], &beta).unwrap();
        let d_hi = structural_delay(&hi, &beta).unwrap().stream_bound;
        let d_mid_alone = structural_delay(&mid, &beta).unwrap().stream_bound;
        let d_lo_alone = structural_delay(&lo, &beta).unwrap().stream_bound;
        assert_eq!(per[0].stream_bound, d_hi);
        assert!(per[1].stream_bound >= d_mid_alone);
        assert!(per[2].stream_bound >= d_lo_alone);
        assert!(per[2].stream_bound >= per[1].stream_bound.min(per[0].stream_bound));
    }

    #[test]
    fn priority_order_matters() {
        let heavy = looped("heavy", 3, 10);
        let light = looped("light", 1, 10);
        let beta = Curve::affine(Q::ZERO, q(3, 4));
        let a = fixed_priority_structural(&[heavy.clone(), light.clone()], &beta).unwrap();
        let b = fixed_priority_structural(&[light, heavy], &beta).unwrap();
        // The light task fares better when prioritized.
        assert!(b[0].stream_bound <= a[1].stream_bound);
    }

    #[test]
    fn unstable_mix_rejected() {
        let t1 = looped("a", 3, 5);
        let t2 = looped("b", 3, 5);
        let beta = Curve::affine(Q::ZERO, Q::ONE);
        assert!(matches!(
            fixed_priority_structural(&[t1, t2], &beta),
            Err(AnalysisError::Unstable { .. })
        ));
    }
}
