//! Experiment runner: regenerates the evaluation tables, figures, and the
//! benchmark document.
//!
//! ```text
//! cargo run -p srtw-bench --release --bin experiments            # everything
//! cargo run -p srtw-bench --release --bin experiments -- all --csv results/
//! cargo run -p srtw-bench --release --bin experiments -- e1 e5
//! cargo run -p srtw-bench --release --bin experiments -- bench --bench-out BENCH_1.json
//! ```
//!
//! With no arguments every experiment (`all`) runs, followed by the four
//! benchmark suites (`bench`), writing `BENCH_1.json` to the current
//! directory. The `bench` pseudo-id can also be requested explicitly next
//! to experiment ids; `--bench-out` overrides the output path.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut bench_out = PathBuf::from("BENCH_1.json");
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--csv" {
            match it.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--csv needs a directory");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--bench-out" {
            match it.next() {
                Some(p) => bench_out = PathBuf::from(p),
                None => {
                    eprintln!("--bench-out needs a path");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            ids.push(a);
        }
    }
    if ids.is_empty() {
        // Full regeneration: every table, then every benchmark suite.
        ids = vec!["all".into(), "bench".into()];
    }
    for id in &ids {
        if id == "bench" {
            let timer = srtw_bench::timing::Timer::from_env();
            println!("BENCH: timing suites (convolution, rbf, structural, simulation)");
            let samples = srtw_bench::suites::all_suites(&timer);
            srtw_bench::timing::print_samples(&samples);
            if let Err(e) = srtw_bench::timing::write_json(&samples, &bench_out) {
                eprintln!("cannot write {}: {e}", bench_out.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", bench_out.display());
        } else if !srtw_bench::run_experiment_to(id, csv_dir.as_deref()) {
            eprintln!("unknown experiment id: {id}");
            eprintln!("usage: experiments [e1..e10|all|bench] ... [--csv DIR] [--bench-out PATH]");
            return ExitCode::FAILURE;
        }
        println!();
    }
    ExitCode::SUCCESS
}
