//! B2 — request-bound-function computation across graph sizes and
//! horizons (the dominance-pruned path exploration).
//!
//! The suite runs one untimed warm-up pass before the graph-size sweep:
//! BENCH_2 recorded the first size (`/5`) slower than `/10` because it
//! also paid the process's cold start (see `rbf_suite`).
//!
//! Run with `cargo bench -p srtw-bench --bench rbf`; set
//! `SRTW_BENCH_FAST=1` for a quick smoke run.

use srtw_bench::suites::rbf_suite;
use srtw_bench::timing::{print_samples, Timer};

fn main() {
    print_samples(&rbf_suite(&Timer::from_env()));
}
