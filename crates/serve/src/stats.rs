//! Service counters and a fixed-size latency ring.
//!
//! Counters are lock-free atomics bumped by workers and the acceptor;
//! latencies go into a bounded ring (old samples are overwritten), so
//! observability costs O(1) memory regardless of uptime — the same
//! "never unbounded" discipline as the admission queue.

use srtw_core::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Capacity of the latency ring (recent `/analyze` requests).
pub const LATENCY_RING: usize = 1024;

#[derive(Debug)]
struct Ring {
    samples_us: Vec<u64>,
    next: usize,
    len: usize,
}

/// Shared service counters; all methods are callable from any thread.
#[derive(Debug)]
pub struct Stats {
    /// Connections admitted past the gate.
    pub accepted: AtomicU64,
    /// Connections refused with 503 (queue full or draining).
    pub shed: AtomicU64,
    /// `/analyze` requests answered 200 with exact bounds.
    pub completed: AtomicU64,
    /// `/analyze` requests answered 200 with a degraded (still sound)
    /// bound.
    pub degraded: AtomicU64,
    /// `/analyze` requests answered 4xx/5xx.
    pub failed: AtomicU64,
    ring: Mutex<Ring>,
}

impl Default for Stats {
    fn default() -> Stats {
        Stats {
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                samples_us: vec![0; LATENCY_RING],
                next: 0,
                len: 0,
            }),
        }
    }
}

impl Stats {
    /// Fresh zeroed counters.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Records one `/analyze` latency (microseconds).
    pub fn note_latency_us(&self, us: u64) {
        let mut r = self.ring.lock().unwrap();
        let slot = r.next;
        r.samples_us[slot] = us;
        r.next = (slot + 1) % LATENCY_RING;
        r.len = (r.len + 1).min(LATENCY_RING);
    }

    /// `(count, p50, p99)` in microseconds over the ring, if any samples
    /// were recorded.
    pub fn latency_quantiles_us(&self) -> Option<(usize, u64, u64)> {
        let r = self.ring.lock().unwrap();
        if r.len == 0 {
            return None;
        }
        let mut window: Vec<u64> = r.samples_us[..r.len].to_vec();
        drop(r);
        window.sort_unstable();
        let quantile = |q_num: usize, q_den: usize| {
            // Nearest-rank on the sorted window.
            let rank = (window.len() * q_num).div_ceil(q_den).max(1);
            window[rank - 1]
        };
        Some((window.len(), quantile(50, 100), quantile(99, 100)))
    }

    /// The `/stats` document. Queue depth and worker/in-flight gauges are
    /// sampled by the caller (they live on the server, not here).
    pub fn to_json(&self, queue_depth: usize, inflight: usize, workers: usize, draining: bool) -> Json {
        let latency = match self.latency_quantiles_us() {
            None => Json::object(vec![("count", Json::Int(0))]),
            Some((count, p50, p99)) => Json::object(vec![
                ("count", Json::Int(count as i128)),
                ("p50_ms", Json::Float(p50 as f64 / 1_000.0)),
                ("p99_ms", Json::Float(p99 as f64 / 1_000.0)),
            ]),
        };
        Json::object(vec![
            ("accepted", Json::Int(self.accepted.load(Ordering::Relaxed) as i128)),
            ("shed", Json::Int(self.shed.load(Ordering::Relaxed) as i128)),
            ("completed", Json::Int(self.completed.load(Ordering::Relaxed) as i128)),
            ("degraded", Json::Int(self.degraded.load(Ordering::Relaxed) as i128)),
            ("failed", Json::Int(self.failed.load(Ordering::Relaxed) as i128)),
            ("queue_depth", Json::Int(queue_depth as i128)),
            ("inflight", Json::Int(inflight as i128)),
            ("workers", Json::Int(workers as i128)),
            ("draining", Json::Bool(draining)),
            ("latency", latency),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_over_a_partial_ring() {
        let s = Stats::new();
        assert_eq!(s.latency_quantiles_us(), None);
        for us in 1..=100 {
            s.note_latency_us(us);
        }
        let (count, p50, p99) = s.latency_quantiles_us().unwrap();
        assert_eq!(count, 100);
        assert_eq!(p50, 50);
        assert_eq!(p99, 99);
    }

    #[test]
    fn ring_overwrites_old_samples() {
        let s = Stats::new();
        for _ in 0..LATENCY_RING {
            s.note_latency_us(1);
        }
        for _ in 0..LATENCY_RING {
            s.note_latency_us(1_000);
        }
        let (count, p50, _) = s.latency_quantiles_us().unwrap();
        assert_eq!(count, LATENCY_RING);
        assert_eq!(p50, 1_000, "old generation fully overwritten");
    }

    #[test]
    fn stats_document_shape() {
        let s = Stats::new();
        s.accepted.fetch_add(3, Ordering::Relaxed);
        s.shed.fetch_add(1, Ordering::Relaxed);
        let doc = s.to_json(2, 1, 4, false).render();
        for needle in [
            "\"accepted\":3",
            "\"shed\":1",
            "\"queue_depth\":2",
            "\"inflight\":1",
            "\"workers\":4",
            "\"draining\":false",
            "\"latency\":{\"count\":0}",
        ] {
            assert!(doc.contains(needle), "{needle} missing from {doc}");
        }
    }
}
