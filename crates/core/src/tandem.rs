//! Tandem (multi-hop) analysis: *pay bursts only once*.
//!
//! A stream crossing servers `β₁, β₂, …, βₖ` in sequence can be analysed
//! two ways:
//!
//! * **end-to-end** — convolve the service curves into `β₁ ⊗ … ⊗ βₖ` and
//!   run the structural analysis once (the burst is "paid" once); or
//! * **per-hop** — bound the delay at hop 1, propagate the output arrival
//!   curve `α′ = α ⊘ β₁`, bound hop 2, and so on, summing the hop delays.
//!
//! The end-to-end bound is never worse and usually strictly better — the
//! classical pay-bursts-only-once phenomenon, reproduced by experiment E9.

use crate::analysis::structural_delay;
use crate::busy::busy_window;
use crate::error::AnalysisError;
use srtw_minplus::{BudgetMeter, Curve, Ext, Pipe, Q};
use srtw_workload::{DrtTask, Rbf};

/// Result of a tandem analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TandemReport {
    /// End-to-end (convolved-service) structural stream bound.
    pub end_to_end: Q,
    /// Sum of the per-hop delay bounds.
    pub per_hop_sum: Q,
    /// The individual hop delays of the per-hop method.
    pub hop_delays: Vec<Q>,
    /// Busy-window bound against the end-to-end service.
    pub busy_window: Q,
}

impl TandemReport {
    /// The report as a JSON value.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::object(vec![
            ("end_to_end", Json::rational(self.end_to_end)),
            ("per_hop_sum", Json::rational(self.per_hop_sum)),
            (
                "hop_delays",
                Json::Array(self.hop_delays.iter().map(|&d| Json::rational(d)).collect()),
            ),
            ("busy_window", Json::rational(self.busy_window)),
        ])
    }
}

/// Analyses a stream crossing `betas` in tandem, returning both the
/// end-to-end and the per-hop bounds.
///
/// All service curves must be ultimately affine (e.g. rate-latency); the
/// exact tail-to-infinity convolution is not defined here for periodic
/// tails — compose such servers with
/// [`srtw_resource::concatenate_upto`] and call
/// [`structural_delay`](crate::structural_delay) directly instead.
///
/// # Examples
///
/// ```
/// use srtw_core::tandem_delay;
/// use srtw_minplus::{Curve, Q};
/// use srtw_workload::DrtTaskBuilder;
///
/// let mut b = DrtTaskBuilder::new("flow");
/// let v = b.vertex("pkt", Q::int(2));
/// b.edge(v, v, Q::int(6));
/// let task = b.build().unwrap();
///
/// let hops = vec![
///     Curve::rate_latency(Q::ONE, Q::int(3)),
///     Curve::rate_latency(Q::ONE, Q::int(2)),
/// ];
/// let r = tandem_delay(&task, &hops).unwrap();
/// assert!(r.end_to_end <= r.per_hop_sum); // pay bursts only once
/// ```
pub fn tandem_delay(task: &DrtTask, betas: &[Curve]) -> Result<TandemReport, AnalysisError> {
    if betas.is_empty() {
        return Err(AnalysisError::UnsupportedService {
            reason: "tandem needs at least one server",
        });
    }

    // End-to-end service: exact convolution of ultimately affine curves.
    let mut e2e = betas[0].clone();
    for b in &betas[1..] {
        e2e = e2e
            .conv(b)
            .map_err(|_| AnalysisError::UnsupportedService {
                reason: "tandem convolution requires ultimately affine service curves",
            })?;
    }
    let e2e_analysis = structural_delay(task, &e2e)?;
    let horizon = e2e_analysis.busy_window;

    // Per-hop: hop delays via hdev, arrival propagation via deconvolution.
    // Each hop's busy window is bounded by the end-to-end busy window (its
    // service dominates the convolved one), so:
    //  * `hdev` suprema are attained within [0, horizon];
    //  * deconvolution suprema are attained for u ≤ horizon.
    // The arrival curve therefore needs to be exact on
    // [0, (hops + 1) · horizon] before the first hop.
    let hops = betas.len() as i128;
    let mut valid = horizon * Q::int(hops + 1) + Q::ONE;
    let rbf = Rbf::compute(task, valid);
    let meter = BudgetMeter::unlimited();
    // One fused pipeline carries the propagated arrival curve across hops:
    // the per-hop delay is a tap, the deconvolution a stage, with no
    // intermediate validation scans and one shared scratch arena.
    let mut alpha = Pipe::new(rbf.curve(), &meter);
    let mut hop_delays = Vec::with_capacity(betas.len());
    let mut per_hop_sum = Q::ZERO;
    for beta in betas {
        let d = match alpha.hdev_against(beta) {
            Ok(Ext::Finite(d)) => d,
            _ => return Err(AnalysisError::ServiceSaturated),
        };
        hop_delays.push(d);
        per_hop_sum += d;
        valid -= horizon;
        alpha = alpha
            .deconv_upto(beta, valid, horizon)
            .map_err(|_| AnalysisError::ServiceSaturated)?;
    }

    Ok(TandemReport {
        end_to_end: e2e_analysis.stream_bound,
        per_hop_sum,
        hop_delays,
        busy_window: horizon,
    })
}

/// Backlog bound at the entrance of hop `k` (0-based) of a tandem: the
/// vertical deviation of the propagated arrival curve against that hop's
/// service.
pub fn tandem_backlog_at(
    task: &DrtTask,
    betas: &[Curve],
    hop: usize,
) -> Result<Q, AnalysisError> {
    if hop >= betas.len() {
        return Err(AnalysisError::UnsupportedService {
            reason: "hop index out of range",
        });
    }
    let mut e2e = betas[0].clone();
    for b in &betas[1..] {
        e2e = e2e
            .conv(b)
            .map_err(|_| AnalysisError::UnsupportedService {
                reason: "tandem convolution requires ultimately affine service curves",
            })?;
    }
    let bw = busy_window(std::slice::from_ref(task), &e2e)?;
    let horizon = bw.bound;
    let hops = betas.len() as i128;
    let mut valid = horizon * Q::int(hops + 1) + Q::ONE;
    let rbf = Rbf::compute(task, valid);
    let meter = BudgetMeter::unlimited();
    let mut alpha = Pipe::new(rbf.curve(), &meter);
    for beta in betas.iter().take(hop) {
        valid -= horizon;
        alpha = alpha
            .deconv_upto(beta, valid, horizon)
            .map_err(|_| AnalysisError::ServiceSaturated)?;
    }
    match alpha.vdev_against(&betas[hop]) {
        Ok(Ext::Finite(v)) => Ok(v),
        _ => Err(AnalysisError::ServiceSaturated),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtw_minplus::q;
    use srtw_workload::DrtTaskBuilder;

    fn stream() -> DrtTask {
        let mut b = DrtTaskBuilder::new("flow");
        let burst = b.vertex("burst", Q::int(3));
        let tail = b.vertex("tail", Q::ONE);
        b.edge(burst, tail, Q::int(4));
        b.edge(tail, tail, Q::int(4));
        b.edge(tail, burst, Q::int(12));
        b.build().unwrap()
    }

    #[test]
    fn pay_bursts_only_once() {
        let task = stream();
        let hops = vec![
            Curve::rate_latency(Q::ONE, Q::int(3)),
            Curve::rate_latency(q(4, 5), Q::int(2)),
            Curve::rate_latency(Q::ONE, Q::int(4)),
        ];
        let r = tandem_delay(&task, &hops).unwrap();
        assert_eq!(r.hop_delays.len(), 3);
        assert!(
            r.end_to_end <= r.per_hop_sum,
            "PBOO violated: {} > {}",
            r.end_to_end,
            r.per_hop_sum
        );
        // With three latencies the per-hop method pays the burst thrice:
        // expect a strict gap on this bursty stream.
        assert!(r.end_to_end < r.per_hop_sum);
    }

    #[test]
    fn single_hop_tandem_matches_structural() {
        let task = stream();
        let beta = Curve::rate_latency(Q::ONE, Q::int(3));
        let r = tandem_delay(&task, std::slice::from_ref(&beta)).unwrap();
        let direct = structural_delay(&task, &beta).unwrap();
        assert_eq!(r.end_to_end, direct.stream_bound);
        // One hop: per-hop method is the plain RTC bound, equal to the
        // structural stream bound (theorem).
        assert_eq!(r.per_hop_sum, direct.stream_bound);
    }

    #[test]
    fn periodic_tails_rejected() {
        let task = stream();
        let tdma = srtw_resource::TdmaServer::new(Q::int(2), Q::int(5), Q::ONE).unwrap();
        use srtw_resource::Server;
        let hops = vec![tdma.beta_lower(), Curve::rate_latency(Q::ONE, Q::ONE)];
        assert!(matches!(
            tandem_delay(&task, &hops),
            Err(AnalysisError::UnsupportedService { .. })
        ));
    }

    #[test]
    fn empty_tandem_rejected() {
        let task = stream();
        assert!(matches!(
            tandem_delay(&task, &[]),
            Err(AnalysisError::UnsupportedService { .. })
        ));
    }

    #[test]
    fn backlog_per_hop_consistent() {
        let task = stream();
        let hops = vec![
            Curve::rate_latency(Q::ONE, Q::int(4)),
            Curve::rate_latency(Q::ONE, Q::int(4)),
        ];
        // Hop 0 sees the raw arrival curve: its backlog equals the direct
        // single-server backlog bound.
        let b0 = tandem_backlog_at(&task, &hops, 0).unwrap();
        let direct =
            crate::analysis::backlog_bound(std::slice::from_ref(&task), &hops[0]).unwrap();
        assert_eq!(b0, direct);
        // Downstream backlog is finite (note: it may legitimately *exceed*
        // the upstream one — a server's output is burstier than its input,
        // releasing accumulated backlog at line rate).
        let b1 = tandem_backlog_at(&task, &hops, 1).unwrap();
        assert!(!b1.is_negative());
        assert!(tandem_backlog_at(&task, &hops, 2).is_err());
    }
}
