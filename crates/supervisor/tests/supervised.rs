//! The supervised ladder under deterministic fault injection.
//!
//! Every failure mode the supervisor guards against is driven here on
//! purpose, via [`FaultPlan`]s threaded into each attempt's budget:
//!
//! * budget trips at the N-th metered op → the attempt *completes*, with a
//!   sound degraded bound (cancellation composes with PR 2's degradation);
//! * injected arithmetic overflow → every rung fails with a typed error
//!   and the job is reported failed with full attempt provenance;
//! * a watchdog timeout → cancellation winds the attempt down promptly.
//!
//! Plus the sandwich invariant under failure: whatever the fault, a
//! completed structural bound is ≥ the exact bound and ≤ the RTC baseline.

use srtw_core::{fifo_rtc, fifo_structural, AnalysisConfig};
use srtw_detrand::prop::forall;
use srtw_detrand::Rng;
use srtw_gen::{adversarial_coprime, adversarial_deep_chain, adversarial_dense, rescale_utilization};
use srtw_minplus::{Curve, FaultKind, FaultPlan, Q};
use srtw_supervisor::{
    run_batch, run_supervised, AnalysisOutput, AttemptStatus, BatchConfig, BatchStatus, JobSpec,
    JobStatus, Rung, SupervisorConfig,
};
use std::time::Duration;

fn q(n: i128, d: i128) -> Q {
    Q::new(n, d)
}

/// A small, stable job the exact rung finishes instantly.
fn small_job(name: &str, seed: u64) -> JobSpec {
    let task = rescale_utilization(&adversarial_dense(3, seed), q(1, 2));
    JobSpec::new(name, vec![task], Curve::rate_latency(Q::int(2), Q::ONE))
}

/// A deliberately expensive job (huge coprime periods) for watchdog tests.
fn heavy_job(name: &str, seed: u64) -> JobSpec {
    let task = adversarial_coprime(9, seed);
    JobSpec::new(name, vec![task], Curve::rate_latency(Q::int(1), Q::int(3)))
}

#[test]
fn clean_job_completes_exactly_on_the_first_rung() {
    let out = run_supervised(&small_job("clean", 7), &SupervisorConfig::default());
    assert_eq!(out.status, JobStatus::Exact);
    assert_eq!(out.rung, Some(Rung::Exact));
    assert_eq!(out.attempts.len(), 1);
    assert_eq!(out.attempts[0].status, AttemptStatus::Completed);
    assert!(!out.attempts[0].degraded);
    assert!(out.error.is_none());
    assert!(matches!(out.output, Some(AnalysisOutput::Structural(_))));
}

#[test]
fn injected_budget_trip_degrades_instead_of_failing() {
    let cfg = SupervisorConfig {
        fault: Some(FaultPlan::new(1, FaultKind::TripBudget)),
        ..Default::default()
    };
    let out = run_supervised(&small_job("tripped", 11), &cfg);
    // A tripped budget is exactly the watchdog-cancellation path: the
    // analysis winds down to a *sound* degraded bound, it does not fail.
    assert_ne!(out.status, JobStatus::Failed, "error: {:?}", out.error);
    if out.status == JobStatus::Degraded {
        let last = out.attempts.last().unwrap();
        assert_eq!(last.status, AttemptStatus::Completed);
        assert!(last.degraded);
        assert!(
            !last.degradations.is_empty() || out.rung == Some(Rung::RtcBaseline),
            "degraded outcome must carry provenance"
        );
    }
}

#[test]
fn injected_overflow_fails_every_rung_with_full_provenance() {
    let cfg = SupervisorConfig {
        fault: Some(FaultPlan::new(1, FaultKind::Overflow)),
        ..Default::default()
    };
    let out = run_supervised(&small_job("poisoned", 13), &cfg);
    assert_eq!(out.status, JobStatus::Failed);
    assert_eq!(out.rung, None);
    // The full ladder was descended: exact, both budgeted retries, rtc.
    assert_eq!(out.attempts.len(), cfg.rungs().len());
    assert_eq!(out.attempts[0].rung, Rung::Exact);
    assert_eq!(out.attempts.last().unwrap().rung, Rung::RtcBaseline);
    for a in &out.attempts {
        assert!(
            matches!(a.status, AttemptStatus::Failed { ref error } if error.contains("overflow")),
            "unexpected attempt status: {:?}",
            a.status
        );
    }
    assert!(out.error.as_deref().unwrap_or("").contains("overflow"));
}

#[test]
fn budgeted_rungs_halve_their_wall_caps() {
    let cfg = SupervisorConfig {
        budget_ms: 800,
        budget_retries: 3,
        ..Default::default()
    };
    assert_eq!(
        cfg.rungs(),
        vec![
            Rung::Exact,
            Rung::Budgeted { wall_ms: 800 },
            Rung::Budgeted { wall_ms: 400 },
            Rung::Budgeted { wall_ms: 200 },
            Rung::RtcBaseline,
        ]
    );
}

#[test]
fn watchdog_cancellation_winds_a_heavy_job_down_promptly() {
    let cfg = SupervisorConfig {
        timeout: Some(Duration::from_millis(40)),
        grace: Duration::from_secs(10),
        budget_ms: 40,
        budget_retries: 1,
        ..Default::default()
    };
    let out = run_supervised(&heavy_job("heavy", 3), &cfg);
    // Cancellation is polled at every metered op, so no attempt should
    // come anywhere near the 10 s grace period (the generous bound keeps
    // slow CI honest, not tight).
    assert!(
        out.wall < Duration::from_secs(8),
        "supervised run took {:?}",
        out.wall
    );
    for a in &out.attempts {
        assert_ne!(
            a.status,
            AttemptStatus::HardTimeout,
            "metered analysis should cancel cooperatively"
        );
    }
    // Whatever rung completed (if any), a completed-but-cancelled attempt
    // must be flagged degraded.
    if out.status == JobStatus::Exact {
        assert!(out.attempts.iter().all(|a| !a.degraded));
    }
}

#[test]
fn sandwich_invariant_holds_under_injected_trips() {
    fn small_stable(rng: &mut Rng, size: u32) -> (JobSpec, u64) {
        let seed = rng.next_u64();
        let task = match rng.random_range(0u32..3) {
            0 => adversarial_coprime(1 + size as usize % 3, seed),
            1 => adversarial_deep_chain(2 + size as usize % 7, seed),
            _ => rescale_utilization(&adversarial_dense(2 + size as usize % 3, seed), q(1, 2)),
        };
        let latency = Q::int(rng.random_range(0i128..=3));
        let spec = JobSpec::new(
            "prop",
            vec![task],
            Curve::rate_latency(Q::int(2), latency),
        );
        (spec, 1 + rng.next_u64() % 64)
    }

    forall("supervised_sandwich", small_stable, |(spec, at_op)| {
        let exact = fifo_structural(&spec.tasks, &spec.beta, &AnalysisConfig::default())
            .expect("small stable instance");
        let rtc = fifo_rtc(&spec.tasks, &spec.beta).expect("small stable instance");
        let cfg = SupervisorConfig {
            fault: Some(FaultPlan::new(*at_op, FaultKind::TripBudget)),
            ..Default::default()
        };
        let out = run_supervised(spec, &cfg);
        assert_ne!(out.status, JobStatus::Failed, "error: {:?}", out.error);
        match &out.output {
            Some(AnalysisOutput::Structural(per)) => {
                for (d, e) in per.iter().zip(exact.iter()) {
                    assert!(
                        d.stream_bound >= e.stream_bound,
                        "op {at_op}: degraded {} below exact {}",
                        d.stream_bound,
                        e.stream_bound
                    );
                    assert!(
                        d.stream_bound <= rtc.bound,
                        "op {at_op}: degraded {} above RTC {}",
                        d.stream_bound,
                        rtc.bound
                    );
                }
            }
            Some(AnalysisOutput::Rtc(r)) => {
                assert!(
                    r.bound >= rtc.bound || r.quality.is_exact(),
                    "op {at_op}: rtc rung bound {} vs baseline {}",
                    r.bound,
                    rtc.bound
                );
            }
            None => panic!("op {at_op}: no output despite non-failed status"),
        }
    });
}

#[test]
fn batch_preserves_input_order_and_counts_accurately() {
    let specs = vec![
        small_job("a", 1),
        small_job("b", 2),
        small_job("c", 3),
        small_job("d", 4),
    ];
    let cfg = BatchConfig {
        jobs: 3,
        ..Default::default()
    };
    let report = run_batch(specs, &cfg);
    assert_eq!(
        report.jobs.iter().map(|j| j.name.as_str()).collect::<Vec<_>>(),
        vec!["a", "b", "c", "d"]
    );
    let c = report.counts();
    assert_eq!(c.exact + c.degraded + c.failed + c.skipped, 4);
    assert_eq!(c.exact, 4);
    assert_eq!(report.status(), BatchStatus::AllExact);
}

#[test]
fn batch_with_poisoned_jobs_reports_failure_without_panicking() {
    let specs = vec![small_job("x", 5), small_job("y", 6)];
    let cfg = BatchConfig {
        jobs: 2,
        supervisor: SupervisorConfig {
            fault: Some(FaultPlan::new(2, FaultKind::Overflow)),
            ..Default::default()
        },
        fail_fast: false,
    };
    let report = run_batch(specs, &cfg);
    assert_eq!(report.status(), BatchStatus::SomeFailed);
    assert_eq!(report.counts().failed, 2);
    let json = report.to_json().render();
    assert!(json.contains("\"some_failed\""), "json: {json}");
}

#[test]
fn fail_fast_skips_unclaimed_jobs() {
    let specs: Vec<JobSpec> = (0..6).map(|i| small_job(&format!("j{i}"), i as u64)).collect();
    let cfg = BatchConfig {
        jobs: 1,
        supervisor: SupervisorConfig {
            fault: Some(FaultPlan::new(1, FaultKind::Overflow)),
            ..Default::default()
        },
        fail_fast: true,
    };
    let report = run_batch(specs, &cfg);
    let c = report.counts();
    assert_eq!(c.failed, 1, "first job fails, cursor stops");
    assert_eq!(c.skipped, 5);
    assert_eq!(report.status(), BatchStatus::SomeFailed);
    assert_eq!(report.jobs[1].status, JobStatus::Skipped);
    assert!(report.jobs[1].error.as_deref().unwrap().contains("fail-fast"));
}

#[test]
fn batch_status_maps_degraded_batches_to_a_warning_not_a_failure() {
    let specs = vec![small_job("ok", 8), small_job("slow", 9)];
    let cfg = BatchConfig {
        jobs: 2,
        supervisor: SupervisorConfig {
            fault: Some(FaultPlan::new(5, FaultKind::TripBudget)),
            ..Default::default()
        },
        fail_fast: false,
    };
    let report = run_batch(specs, &cfg);
    assert_ne!(report.status(), BatchStatus::SomeFailed);
    let c = report.counts();
    assert_eq!(c.failed + c.skipped, 0);
}
