//! Request-bound functions of digraph real-time tasks.
//!
//! The **request-bound function** `rbf(t)` of a [`DrtTask`] is the maximum
//! total WCET a single behaviour of the task can release inside any closed
//! time window of length `t` (releases at both window ends count, so
//! `rbf(0)` is the largest single WCET). It is the exact structural
//! abstraction used as the task's *upper arrival curve* by the RTC baseline
//! and as the busy-window bound by the structural analysis.
//!
//! `rbf` is computed by abstract-path exploration with dominance pruning
//! (see [`crate::paths`]) and returned as a right-continuous staircase.

use crate::digraph::DrtTask;
use crate::paths::{explore_metered_threads, ExploreConfig};
use srtw_minplus::{BudgetKind, BudgetMeter, Curve, Piece, Q, Tail};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The request-bound function of a task, materialized up to a horizon.
///
/// # Examples
///
/// ```
/// use srtw_workload::{DrtTaskBuilder, Rbf};
/// use srtw_minplus::Q;
///
/// let mut b = DrtTaskBuilder::new("periodic-ish");
/// let v = b.vertex("job", Q::int(2));
/// b.edge(v, v, Q::int(5));
/// let task = b.build().unwrap();
///
/// let rbf = Rbf::compute(&task, Q::int(20));
/// assert_eq!(rbf.eval(Q::ZERO), Q::int(2));
/// assert_eq!(rbf.eval(Q::int(4)), Q::int(2));
/// assert_eq!(rbf.eval(Q::int(5)), Q::int(4));
/// assert_eq!(rbf.eval(Q::int(20)), Q::int(10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rbf {
    /// Staircase breakpoints `(span, max work)` with strictly increasing
    /// span and work. On a truncated rbf only **exact** breakpoints are
    /// kept (spans strictly below [`Rbf::exact_span`]).
    points: Vec<(Q, Q)>,
    horizon: Q,
    /// Spans strictly below this are exact. Equals `horizon` for exact
    /// rbfs; smaller when the exploration was interrupted by a budget.
    exact_span: Q,
    /// `Some(kind)` when the exploration was interrupted and the rbf falls
    /// back to its coarse affine over-approximation beyond `exact_span`.
    truncated: Option<BudgetKind>,
    /// Offset of the coarse affine tail `tail_base + tail_rate·t`.
    tail_base: Q,
    /// Rate of the coarse affine tail.
    tail_rate: Q,
    /// Number of retained abstract paths during computation.
    pub paths_retained: usize,
    /// Number of candidates pruned by dominance.
    pub paths_pruned: usize,
}

impl Rbf {
    /// Computes the request-bound function of `task` on `[0, horizon]`.
    pub fn compute(task: &DrtTask, horizon: Q) -> Rbf {
        Rbf::compute_metered(task, horizon, &BudgetMeter::unlimited())
    }

    /// Budgeted [`Rbf::compute`]: when the exploration budget trips, the
    /// result degrades instead of failing. Breakpoints are kept only for
    /// the completely-enumerated span prefix (see
    /// [`crate::Exploration::complete_span`]), and demand beyond it is
    /// over-approximated by an affine tail derived from subadditivity:
    ///
    /// > `rbf(a + b) ≤ rbf(a) + rbf(b)` (a window splits into sub-windows
    /// > whose paths are themselves legal), hence for every `s < S`:
    /// > `rbf(t) ≤ ⌈t/s⌉·rbf(s) ≤ (1 + t/s)·rbf(s) ≤ (1 + t/s)·W` with
    /// > `W = sup_{s<S} rbf(s)`, and in the limit `s → S`:
    /// > `rbf(t) ≤ W + (W/S)·t` for all `t ≥ 0`.
    ///
    /// When nothing was enumerated (`S = 0`), the generic job-packing
    /// bound `rbf(t) ≤ e_max·(1 + t/p_min)` over the largest WCET and the
    /// smallest edge separation is used instead (flat `e_max` for an
    /// edgeless task). Either way the truncated rbf **dominates** the true
    /// rbf everywhere, so any delay bound computed from it is sound.
    pub fn compute_metered(task: &DrtTask, horizon: Q, meter: &BudgetMeter) -> Rbf {
        Rbf::compute_metered_threads(task, horizon, meter, 1)
    }

    /// [`Rbf::compute_metered`] with the path exploration sharded across
    /// `threads` workers (see
    /// [`explore_metered_threads`](crate::explore_metered_threads)). The
    /// result is bit-identical to the sequential computation for every
    /// `threads` value; `threads <= 1` runs the sequential engine.
    pub fn compute_metered_threads(
        task: &DrtTask,
        horizon: Q,
        meter: &BudgetMeter,
        threads: usize,
    ) -> Rbf {
        let ex = explore_metered_threads(task, &ExploreConfig::new(horizon), meter, threads);
        let exact_span = ex.complete_span;
        let truncated = ex.interrupted;
        let mut pts: Vec<(Q, Q)> = ex
            .nodes()
            .iter()
            .filter(|n| truncated.is_none() || n.span < exact_span)
            .map(|n| (n.span, n.work))
            .collect();
        pts.sort();
        // Running max over increasing span; keep strictly increasing work.
        let mut points: Vec<(Q, Q)> = Vec::new();
        for (s, w) in pts {
            match points.last_mut() {
                Some(last) if last.0 == s => {
                    if w > last.1 {
                        last.1 = w;
                    }
                }
                Some(last) if w <= last.1 => {}
                _ => points.push((s, w)),
            }
        }
        // Coarse affine tail dominating the true rbf everywhere (only used
        // when truncated; see the doc comment for the soundness argument).
        // Both the subadditive line (from the exact prefix) and the
        // job-packing line dominate the rbf globally; keep the one with
        // the smaller rate — a short exact prefix makes the subadditive
        // rate `W/S` arbitrarily steep, while the packing rate never
        // exceeds `e_max/p_min`.
        let packing = {
            let e_max = task
                .vertex_ids()
                .map(|v| task.wcet(v))
                .fold(Q::ZERO, Q::max);
            let p_min = task
                .vertex_ids()
                .flat_map(|v| task.out_edges(v).iter().map(|e| e.separation))
                .fold(None, |acc: Option<Q>, s| {
                    Some(acc.map_or(s, |a| a.min(s)))
                });
            match p_min {
                Some(p) => (e_max, e_max / p),
                None => (e_max, Q::ZERO),
            }
        };
        let (tail_base, tail_rate) = if exact_span.is_positive() && !points.is_empty() {
            let w = points.last().expect("non-empty").1;
            let subadd = (w, w / exact_span);
            if subadd.1 <= packing.1 {
                subadd
            } else {
                packing
            }
        } else {
            packing
        };
        Rbf {
            points,
            horizon,
            exact_span,
            truncated,
            tail_base,
            tail_rate,
            paths_retained: ex.nodes().len(),
            paths_pruned: ex.pruned,
        }
    }

    /// The horizon up to which this rbf is valid. A truncated rbf remains
    /// evaluable (coarsely) beyond it.
    pub fn horizon(&self) -> Q {
        self.horizon
    }

    /// The staircase breakpoints `(span, work)`.
    pub fn points(&self) -> &[(Q, Q)] {
        &self.points
    }

    /// Spans strictly below this value are exact. Equals
    /// [`Rbf::horizon`] for exact rbfs.
    pub fn exact_span(&self) -> Q {
        self.exact_span
    }

    /// The budget dimension that truncated this rbf, if any.
    pub fn truncated(&self) -> Option<BudgetKind> {
        self.truncated
    }

    /// The coarse affine tail `(base, rate)` with
    /// `rbf(t) ≤ base + rate·t` for all `t`. Meaningful mostly for
    /// truncated rbfs, but always a valid upper line.
    pub fn coarse_line(&self) -> (Q, Q) {
        (self.tail_base, self.tail_rate)
    }

    /// Evaluates `rbf(t)` — exactly below [`Rbf::exact_span`], via the
    /// dominating affine tail beyond it on truncated rbfs.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative, or if `t` is beyond the computed horizon
    /// on an **exact** rbf (a truncated rbf accepts any `t`: its tail is
    /// defined everywhere).
    pub fn eval(&self, t: Q) -> Q {
        assert!(!t.is_negative(), "rbf at negative window length");
        if self.truncated.is_some() && t >= self.exact_span {
            return self.tail_base + self.tail_rate * t;
        }
        assert!(
            t <= self.horizon,
            "rbf({t}) beyond computed horizon {}",
            self.horizon
        );
        match self.points.iter().rev().find(|p| p.0 <= t) {
            Some(&(_, w)) => w,
            None => Q::ZERO,
        }
    }

    /// Total-function demand bound, defined for every `t ≥ 0` and never
    /// panicking on the horizon.
    ///
    /// On an **exact** rbf this is the staircase value clamped at the
    /// horizon — sound inside any finitary analysis whose busy window fits
    /// the horizon, exactly like [`Rbf::eval`] at
    /// `t.min(horizon)`. On a **truncated** rbf the dominating affine tail
    /// covers everything beyond the exact prefix, so the result
    /// upper-bounds the true rbf unconditionally.
    pub fn bound_at(&self, t: Q) -> Q {
        if self.truncated.is_some() {
            self.eval(t)
        } else {
            self.eval(t.min(self.horizon))
        }
    }

    /// The rbf as a [`Curve`].
    ///
    /// For an **exact** rbf this is the staircase on `[0, horizon]`;
    /// beyond the horizon the curve stays flat, which under-approximates
    /// future demand and is only sound inside a finitary analysis whose
    /// busy window fits the horizon (exactly how the `srtw-core` analyses
    /// use it). For a **truncated** rbf the exact staircase prefix is
    /// extended with the dominating affine tail from `exact_span` on, so
    /// the returned curve upper-bounds the true rbf **everywhere**.
    pub fn curve(&self) -> Curve {
        let staircase = |points: &[(Q, Q)]| -> Curve {
            let mut pts = Vec::with_capacity(points.len() + 1);
            if points[0].0 != Q::ZERO {
                pts.push((Q::ZERO, Q::ZERO));
            }
            pts.extend(points.iter().copied());
            Curve::staircase_from_points(&pts).expect("rbf staircase invalid")
        };
        match self.truncated {
            None => {
                if self.points.is_empty() {
                    Curve::zero()
                } else {
                    staircase(&self.points)
                }
            }
            Some(_) => {
                // Exact prefix, then the dominating affine tail. The tail
                // value at exact_span is ≥ the last exact work (base alone
                // already is), so the pieces stay non-decreasing.
                let mut pieces: Vec<Piece> = if self.points.is_empty() {
                    Vec::new()
                } else {
                    staircase(&self.points)
                        .pieces()
                        .iter()
                        .copied()
                        .filter(|p| p.start < self.exact_span)
                        .collect()
                };
                if pieces.is_empty() {
                    pieces.push(Piece::new(Q::ZERO, self.tail_base, self.tail_rate));
                } else {
                    pieces.push(Piece::new(
                        self.exact_span,
                        self.tail_base + self.tail_rate * self.exact_span,
                        self.tail_rate,
                    ));
                }
                Curve::new(pieces, Tail::Affine).expect("truncated rbf curve invalid")
            }
        }
    }

    /// The total demand bound at the horizon (of the exact prefix for
    /// truncated rbfs).
    pub fn max_work(&self) -> Q {
        self.points.last().map(|p| p.1).unwrap_or(Q::ZERO)
    }
}

/// How many `(horizon, rbf)` entries the memo keeps per task. The
/// busy-window fixpoint revisits only a handful of horizons per task
/// (initial probe, geometric growth levels, final bound), so a small
/// fixed way-count covers the useful hits without unbounded growth.
const MEMO_WAYS: usize = 8;

/// A per-analysis memo for [`Rbf`] computations, keyed by
/// `(task index, horizon)`.
///
/// The busy-window fixpoint and the per-stream delay analyses repeatedly
/// materialize the *same* rbf at the *same* horizon (most prominently: the
/// final fixpoint bound, recomputed once by the fixpoint itself and once
/// per stream). The memo deduplicates that work.
///
/// Reads are lock-free: each slot is a [`OnceLock`], so lookups never
/// block and the structure can be shared by reference across analysis
/// shards. Writes race benignly — whichever thread initializes a slot
/// first wins, and since **only exact results are cached** (a truncated
/// rbf depends on the budget state at computation time, an exact one is a
/// pure function of `(task, horizon)`), the cached value is independent
/// of the winner. Cache hits skip the exploration's budget ticks, which
/// can only make a budgeted analysis complete *more* exactly, never less.
#[derive(Debug)]
pub struct RbfMemo {
    slots: Vec<[OnceLock<(Q, Rbf)>; MEMO_WAYS]>,
    /// Lookups answered from a cached slot (including seeded ones).
    hits: AtomicU64,
    /// Lookups that had to run the exploration.
    computes: AtomicU64,
}

impl RbfMemo {
    /// A memo with one slot group per task of the analysed system.
    pub fn new(num_tasks: usize) -> RbfMemo {
        RbfMemo {
            slots: (0..num_tasks)
                .map(|_| std::array::from_fn(|_| OnceLock::new()))
                .collect(),
            hits: AtomicU64::new(0),
            computes: AtomicU64::new(0),
        }
    }

    /// Pre-populates a slot with an rbf computed elsewhere (e.g. by a
    /// previous request, promoted across requests by the service layer).
    ///
    /// Only **exact** rbfs are accepted — a truncated rbf depends on the
    /// budget state of the run that produced it, an exact one is a pure
    /// function of `(task, horizon)`, which is what makes cross-request
    /// promotion sound. Returns `true` when the entry was stored.
    pub fn seed(&self, index: usize, horizon: Q, rbf: Rbf) -> bool {
        if rbf.truncated().is_some() {
            return false;
        }
        if let Some(ways) = self.slots.get(index) {
            for slot in ways {
                if matches!(slot.get(), Some((h, _)) if *h == horizon) {
                    return true;
                }
                if slot.set((horizon, rbf.clone())).is_ok() {
                    return true;
                }
            }
        }
        false
    }

    /// Every cached `(index, horizon, rbf)` entry — used by the service
    /// layer to promote exact rbfs into its cross-request store.
    pub fn snapshot(&self) -> Vec<(usize, Q, Rbf)> {
        let mut out = Vec::new();
        for (index, ways) in self.slots.iter().enumerate() {
            for slot in ways {
                if let Some((h, rbf)) = slot.get() {
                    out.push((index, *h, rbf.clone()));
                }
            }
        }
        out
    }

    /// Lookups answered from a cached slot.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran the exploration.
    pub fn computes(&self) -> u64 {
        self.computes.load(Ordering::Relaxed)
    }

    /// Returns the cached rbf for `(index, horizon)` or computes it with
    /// [`Rbf::compute_metered_threads`], caching exact results.
    ///
    /// `index` must consistently identify `task` across calls; an index
    /// beyond the memo's size disables caching for that call.
    pub fn get_or_compute(
        &self,
        index: usize,
        task: &DrtTask,
        horizon: Q,
        meter: &BudgetMeter,
        threads: usize,
    ) -> Rbf {
        if let Some(ways) = self.slots.get(index) {
            for slot in ways {
                if let Some((h, rbf)) = slot.get() {
                    if *h == horizon {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return rbf.clone();
                    }
                }
            }
        }
        self.computes.fetch_add(1, Ordering::Relaxed);
        let rbf = Rbf::compute_metered_threads(task, horizon, meter, threads);
        if rbf.truncated().is_none() {
            if let Some(ways) = self.slots.get(index) {
                for slot in ways {
                    if slot.set((horizon, rbf.clone())).is_ok() {
                        break;
                    }
                    // Occupied: if it now holds our key (a racing writer
                    // beat us to it), stop probing; otherwise try the next
                    // way. A full group simply skips caching.
                    if matches!(slot.get(), Some((h, _)) if *h == horizon) {
                        break;
                    }
                }
            }
        }
        rbf
    }
}

/// Convenience: computes `rbf` values of a task at integer steps — used by
/// tests and experiment harnesses.
pub fn rbf_samples(task: &DrtTask, horizon: i128) -> Vec<(Q, Q)> {
    let rbf = Rbf::compute(task, Q::int(horizon));
    (0..=horizon)
        .map(|t| (Q::int(t), rbf.eval(Q::int(t))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DrtTaskBuilder;
    use srtw_minplus::q;

    /// Brute-force rbf by exhaustive DFS over all paths (no pruning).
    fn brute_rbf(task: &DrtTask, t: Q) -> Q {
        fn dfs(task: &DrtTask, v: crate::digraph::VertexId, span: Q, work: Q, t: Q, best: &mut Q) {
            if work > *best {
                *best = work;
            }
            for e in task.out_edges(v) {
                let s = span + e.separation;
                if s <= t {
                    dfs(task, e.to, s, work + task.wcet(e.to), t, best);
                }
            }
        }
        let mut best = Q::ZERO;
        for v in task.vertex_ids() {
            dfs(task, v, Q::ZERO, task.wcet(v), t, &mut best);
        }
        best
    }

    fn branching() -> DrtTask {
        let mut b = DrtTaskBuilder::new("branching");
        let a = b.vertex("a", Q::int(3));
        let x = b.vertex("x", Q::ONE);
        let y = b.vertex("y", Q::int(2));
        b.edge(a, x, Q::int(4));
        b.edge(a, y, Q::int(6));
        b.edge(x, a, Q::int(4));
        b.edge(y, a, Q::int(3));
        b.build().unwrap()
    }

    #[test]
    fn rbf_matches_brute_force() {
        let task = branching();
        let rbf = Rbf::compute(&task, Q::int(40));
        for i in 0..=80 {
            let t = q(i, 2);
            assert_eq!(rbf.eval(t), brute_rbf(&task, t), "rbf({t})");
        }
    }

    #[test]
    fn rbf_monotone_and_subadditive() {
        // rbf is monotone and subadditive (a window splits into two halves
        // whose sub-paths are themselves legal paths) — the latter is also
        // covered by a property test over random graphs.
        let task = branching();
        let rbf = Rbf::compute(&task, Q::int(60));
        let mut prev = Q::ZERO;
        for i in 0..=60 {
            let v = rbf.eval(Q::int(i));
            assert!(v >= prev);
            prev = v;
        }
        for a in 0..=30 {
            for b in 0..=30 {
                let (qa, qb) = (Q::int(a), Q::int(b));
                assert!(rbf.eval(qa + qb) <= rbf.eval(qa) + rbf.eval(qb));
            }
        }
    }

    #[test]
    fn rbf_zero_is_max_wcet() {
        let task = branching();
        let rbf = Rbf::compute(&task, Q::int(10));
        assert_eq!(rbf.eval(Q::ZERO), Q::int(3));
    }

    #[test]
    fn rbf_curve_agrees_with_eval() {
        let task = branching();
        let rbf = Rbf::compute(&task, Q::int(30));
        let c = rbf.curve();
        for i in 0..=60 {
            let t = q(i, 2);
            assert_eq!(c.eval(t), rbf.eval(t), "curve vs eval at {t}");
        }
    }

    #[test]
    fn rbf_dag_saturates() {
        let mut b = DrtTaskBuilder::new("dag");
        let a = b.vertex("a", Q::int(2));
        let c = b.vertex("b", Q::int(3));
        b.edge(a, c, Q::int(5));
        let task = b.build().unwrap();
        let rbf = Rbf::compute(&task, Q::int(100));
        assert_eq!(rbf.eval(Q::int(4)), Q::int(3)); // single heaviest job
        assert_eq!(rbf.eval(Q::int(5)), Q::int(5)); // a then b
        assert_eq!(rbf.eval(Q::int(100)), Q::int(5)); // no more work exists
        assert_eq!(rbf.max_work(), Q::int(5));
    }

    #[test]
    #[should_panic(expected = "beyond computed horizon")]
    fn rbf_eval_beyond_horizon_panics() {
        let task = branching();
        let rbf = Rbf::compute(&task, Q::int(10));
        let _ = rbf.eval(Q::int(11));
    }

    #[test]
    fn rbf_samples_helper() {
        let task = branching();
        let s = rbf_samples(&task, 10);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0].1, Q::int(3));
    }

    #[test]
    fn truncated_rbf_dominates_exact() {
        use srtw_minplus::Budget;
        let task = branching();
        let exact = Rbf::compute(&task, Q::int(60));
        let meter = BudgetMeter::new(&Budget::default().with_max_paths(6));
        let coarse = Rbf::compute_metered(&task, Q::int(60), &meter);
        assert!(coarse.truncated().is_some());
        assert!(coarse.exact_span() < Q::int(60));
        let c = coarse.curve();
        for i in 0..=240 {
            let t = q(i, 2);
            // Both the direct eval and the curve dominate the true rbf.
            assert!(
                coarse.eval(t) >= exact.eval(t.min(Q::int(60))),
                "eval not dominating at {t}"
            );
            assert!(
                c.eval(t) >= exact.eval(t.min(Q::int(60))),
                "curve not dominating at {t}"
            );
            // ... and they agree below the exact span.
            if t < coarse.exact_span() {
                assert_eq!(coarse.eval(t), exact.eval(t), "exact prefix differs at {t}");
            }
        }
        // Truncated rbfs stay evaluable beyond the horizon.
        let _ = coarse.eval(Q::int(1_000_000));
    }

    #[test]
    fn fully_truncated_rbf_uses_packing_bound() {
        use srtw_minplus::Budget;
        let task = branching();
        // Budget of zero paths: nothing is enumerated at all.
        let meter = BudgetMeter::new(&Budget::default().with_max_paths(0));
        let coarse = Rbf::compute_metered(&task, Q::int(40), &meter);
        assert!(coarse.truncated().is_some());
        assert_eq!(coarse.exact_span(), Q::ZERO);
        assert!(coarse.points().is_empty());
        let exact = Rbf::compute(&task, Q::int(40));
        for i in 0..=80 {
            let t = q(i, 2);
            assert!(coarse.eval(t) >= exact.eval(t), "packing bound fails at {t}");
        }
        // e_max = 3, p_min = 3 ⇒ rbf(t) ≤ 3 + t.
        let (b, r) = coarse.coarse_line();
        assert_eq!(b, Q::int(3));
        assert_eq!(r, Q::ONE);
    }

    #[test]
    fn exact_rbf_curve_is_unchanged_by_metered_entry() {
        let task = branching();
        let a = Rbf::compute(&task, Q::int(30));
        let b = Rbf::compute_metered(&task, Q::int(30), &BudgetMeter::unlimited());
        assert_eq!(a, b);
        assert_eq!(a.truncated(), None);
        assert_eq!(a.exact_span(), Q::int(30));
    }
}
