//! B1 — (min,+) operator micro-benchmarks: convolution, deconvolution,
//! deviations, and pointwise ops on representative curve pairs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srtw_minplus::{q, Curve, Q};
use std::hint::black_box;

fn bench_conv(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv_upto");
    for &h in &[20i128, 50, 100, 200] {
        let a = Curve::staircase(Q::int(4), Q::int(3));
        let b = Curve::rate_latency(q(3, 4), Q::int(5));
        g.bench_with_input(BenchmarkId::from_parameter(h), &h, |bench, &h| {
            bench.iter(|| black_box(a.conv_upto(&b, Q::int(h))))
        });
    }
    g.finish();
}

fn bench_deconv(c: &mut Criterion) {
    let mut g = c.benchmark_group("deconv");
    for &h in &[10i128, 20, 40] {
        let a = Curve::staircase(Q::int(5), Q::int(2));
        let b = Curve::rate_latency(Q::ONE, Q::int(3));
        g.bench_with_input(BenchmarkId::from_parameter(h), &h, |bench, &h| {
            bench.iter(|| black_box(a.deconv(&b, Q::int(h)).unwrap()))
        });
    }
    g.finish();
}

fn bench_hdev(c: &mut Criterion) {
    let alpha = Curve::staircase(Q::int(7), Q::int(3));
    let beta = Curve::rate_latency(q(2, 3), Q::int(4));
    c.bench_function("hdev_staircase_vs_rate_latency", |b| {
        b.iter(|| black_box(alpha.hdev(&beta)))
    });
}

fn bench_pointwise(c: &mut Criterion) {
    let a = Curve::staircase(Q::int(4), Q::int(3));
    let b = Curve::staircase(Q::int(6), Q::int(2));
    c.bench_function("pointwise_min_periodic_pair", |bench| {
        bench.iter(|| black_box(a.pointwise_min(&b)))
    });
    c.bench_function("sub_clamped_monotone_leftover", |bench| {
        let beta = Curve::rate_latency(Q::int(2), Q::int(3));
        bench.iter(|| black_box(beta.sub_clamped_monotone(&a)))
    });
}

criterion_group!(benches, bench_conv, bench_deconv, bench_hdev, bench_pointwise);
criterion_main!(benches);
