//! B4 — simulator throughput: jobs per second on fluid and TDMA service
//! processes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srtw_gen::{generate_drt, DrtGenConfig};
use srtw_minplus::{q, Q};
use srtw_sim::{earliest_random_walk, simulate_fifo, ServiceProcess};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let cfg = DrtGenConfig {
        vertices: 8,
        extra_edges: 8,
        separation_range: (5, 40),
        wcet_range: (1, 9),
        target_utilization: Some(q(3, 5)),
        deadline_factor: None,
    };
    let task = generate_drt(&cfg, 9);
    let mut g = c.benchmark_group("simulate_fifo");
    for &h in &[200i128, 1000, 4000] {
        let trace = earliest_random_walk(&task, Q::int(h), None, 5);
        let fluid = ServiceProcess::fluid(q(4, 5));
        g.bench_with_input(BenchmarkId::new("fluid", h), &trace, |b, trace| {
            b.iter(|| {
                black_box(simulate_fifo(
                    std::slice::from_ref(&task),
                    std::slice::from_ref(trace),
                    &fluid,
                ))
            })
        });
        let tdma = ServiceProcess::tdma(Q::int(4), Q::int(5), Q::ONE, Q::ONE);
        g.bench_with_input(BenchmarkId::new("tdma", h), &trace, |b, trace| {
            b.iter(|| {
                black_box(simulate_fifo(
                    std::slice::from_ref(&task),
                    std::slice::from_ref(trace),
                    &tdma,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
